"""Uniform quantization utilities used by the digital-to-ONN conversion pass.

Analog PTCs encode operands with a limited DAC/ADC resolution; the conversion pass
snaps weights (and, during simulation, activations) to the representable grid so the
workload records carry the values the hardware will actually see.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np


def quantize_uniform(
    values: np.ndarray,
    bits: int,
    symmetric: bool = True,
) -> np.ndarray:
    """Quantize ``values`` to a ``bits``-bit uniform grid and return dequantized floats.

    With ``symmetric=True`` the grid spans ``[-max|v|, +max|v|]`` (signed encoding,
    the natural fit for full-range PTCs); otherwise it spans ``[min(v), max(v)]``
    (unsigned / intensity encoding).
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return values.copy()
    if symmetric:
        peak = float(np.max(np.abs(values)))
        if peak == 0.0:
            return np.zeros_like(values)
        # Signed grid with 2^(bits-1) - 1 positive levels.
        levels = max(2 ** (bits - 1) - 1, 1)
        scale = peak / levels
        return np.round(values / scale) * scale
    low = float(values.min())
    high = float(values.max())
    if high == low:
        return np.full_like(values, low)
    levels = 2**bits - 1
    scale = (high - low) / levels
    return np.round((values - low) / scale) * scale + low


def quantize_uniform_batch(
    values: np.ndarray,
    bits: int,
    symmetric: bool = True,
) -> np.ndarray:
    """Per-slice :func:`quantize_uniform` over a leading ``(trials, ...)`` axis.

    Each slice ``values[i]`` gets its own grid (per-trial peak / range), exactly
    as if :func:`quantize_uniform` were called per trial -- the scale is a
    per-trial scalar broadcast over the slice, so the result is bit-identical
    to the per-trial loop -- but the rounding and rescaling run as one batched
    numpy call.  Float inputs keep their dtype (the ``REPRO_DTYPE=float32``
    batched path quantizes float32 stacks without a float64 round trip).
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    values = np.asarray(values)
    if values.dtype.kind != "f":
        values = values.astype(float)
    if values.size == 0:
        return values.copy()
    if values.ndim < 2:
        # A (trials,) stack of scalars: each slice still gets its own grid.
        return quantize_uniform_batch(
            values.reshape(-1, 1), bits, symmetric=symmetric
        ).reshape(values.shape)
    reduce_axes = tuple(range(1, values.ndim))
    if symmetric:
        # max(|v|) as max(max(v), -min(v)): two reductions, no |v| temporary
        # (bit-identical -- |v| is exactly v or -v for every float).
        peak = np.maximum(
            values.max(axis=reduce_axes, keepdims=True),
            -values.min(axis=reduce_axes, keepdims=True),
        )
        levels = max(2 ** (bits - 1) - 1, 1)
        scale = peak / levels
        safe = np.where(scale == 0.0, 1.0, scale)
        # In-place round/rescale: one output allocation instead of three
        # temporaries (these stacks are the batched path's largest tensors).
        out = np.divide(values, safe, out=np.empty_like(values))
        np.round(out, out=out)
        out *= safe
        if np.any(peak == 0.0):
            out[np.broadcast_to(peak == 0.0, out.shape)] = 0.0
        return out
    low = values.min(axis=reduce_axes, keepdims=True)
    high = values.max(axis=reduce_axes, keepdims=True)
    levels = 2**bits - 1
    span = high - low
    safe = np.where(span == 0.0, 1.0, span) / levels
    out = np.round((values - low) / safe) * safe + low
    return np.where(span == 0.0, low + np.zeros_like(values), out)


def receiver_limited_bits(nominal_bits: int, effective_bits: Optional[float]) -> int:
    """DAC/ADC resolution the optical link can actually deliver.

    The converter may be built for ``nominal_bits``, but the receiver only
    resolves :attr:`~repro.core.snr.SNRReport.effective_bits` amplitude levels;
    quantizing operands to ``min(nominal, floor(effective))`` makes the
    simulated grid reflect what the link closes, floored at 1 bit so a
    degenerate link (zero received power) still produces a finite, NaN-free
    evaluation instead of a divide-by-zero.  ``None`` or infinite
    ``effective_bits`` means "receiver not modeled": the nominal grid applies.
    """
    if nominal_bits < 1:
        raise ValueError(f"nominal_bits must be >= 1, got {nominal_bits}")
    if effective_bits is None or math.isinf(effective_bits):
        return nominal_bits
    if math.isnan(effective_bits):
        raise ValueError("effective_bits must not be NaN")
    return max(1, min(nominal_bits, int(math.floor(effective_bits))))


def quantization_error(values: np.ndarray, bits: int, symmetric: bool = True) -> float:
    """Root-mean-square error introduced by ``bits``-bit uniform quantization."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    quantized = quantize_uniform(values, bits, symmetric=symmetric)
    return float(np.sqrt(np.mean((values - quantized) ** 2)))


def quantize_with_scale(values: np.ndarray, bits: int) -> Tuple[np.ndarray, float]:
    """Quantize to signed integers and return ``(int_codes, scale)``.

    Useful when the downstream model wants the raw DAC codes (e.g. to estimate
    driver power from the code value) rather than the dequantized floats.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return values.astype(int), 1.0
    peak = float(np.max(np.abs(values)))
    levels = max(2 ** (bits - 1) - 1, 1)
    if peak == 0.0:
        return np.zeros(values.shape, dtype=int), 1.0
    scale = peak / levels
    codes = np.clip(np.round(values / scale), -levels - 1, levels).astype(int)
    return codes, scale
