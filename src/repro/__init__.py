"""SimPhony reproduction: cross-layer electronic-photonic AI system simulator.

The package mirrors the layering of the SimPhony paper (DAC 2025):

- :mod:`repro.devices`  -- SimPhony-DevLib, the electronic-photonic device library.
- :mod:`repro.netlist`  -- directed 2-pin netlists, weighted DAGs, scaling rules.
- :mod:`repro.arch`     -- SimPhony-Arch, the hierarchical architecture builder and
  the template photonic-tensor-core architectures (TeMPO, MZI mesh, SCATTER, ...).
- :mod:`repro.memory`   -- the CACTI-like memory substrate and the four-level
  HBM/GLB/LB/RF hierarchy.
- :mod:`repro.onn`      -- the TorchONN-lite substrate: numpy NN layers, models,
  digital-to-ONN conversion and GEMM workload extraction.
- :mod:`repro.dataflow` -- photonics-specific dataflow mapping.
- :mod:`repro.layout`   -- signal-flow-aware floorplanning for layout-aware area.
- :mod:`repro.core`     -- SimPhony-Sim: the Simulator and the latency / energy /
  area / link-budget / memory analyzers.
- :mod:`repro.scenarios` -- the declarative scenario registry, batch runner and
  persistent result store behind ``python -m repro`` (:mod:`repro.cli`): every
  figure/table experiment of the paper as a registered, validated spec.
"""

from repro.core.cache import EvaluationCache
from repro.core.engine import EvaluationEngine
from repro.core.simulator import Simulator, SimulationResult
from repro.core.config import SimulationConfig
from repro.devices.library import DeviceLibrary
from repro.arch.architecture import Architecture, ArchitectureConfig
from repro.dataflow.gemm import GEMMWorkload

__version__ = "0.2.0"

__all__ = [
    "Simulator",
    "SimulationResult",
    "SimulationConfig",
    "EvaluationCache",
    "EvaluationEngine",
    "DeviceLibrary",
    "Architecture",
    "ArchitectureConfig",
    "GEMMWorkload",
    "__version__",
]
