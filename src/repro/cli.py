"""The ``repro`` command line: list, run, batch and report registered scenarios.

Replaces the per-figure benchmark scripts as the entry point for reproducing the
paper's evaluation::

    python -m repro list                      # what can I run?
    python -m repro run fig7_tempo_validation # one scenario, table on stdout
    python -m repro batch --smoke             # fast subset, shared cache + store
    python -m repro batch --all --jobs 4      # everything, thread-parallel
    python -m repro batch --all --backend processes --jobs 4   # GIL-free workers
    python -m repro worker --connect HOST:7621 # join a cluster as a worker
    python -m repro report                    # what is in the result store?

Results are persisted to a content-addressed store (``--store``, default
``$REPRO_STORE`` or ``./.repro_store``); re-running an unchanged scenario is a
store hit that executes no engine pass.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.report import format_table, save_result_text
from repro.exec import BACKENDS
from repro.scenarios import (
    REGISTRY,
    BatchRunner,
    ResultStore,
    default_store_root,
)
from repro.scenarios.bench import (
    DEFAULT_BENCH_PATH,
    bench_cluster_scaling,
    bench_dispatch_comparison,
    bench_scenarios,
    check_speedups,
    write_bench_report,
)


def _positive_int(text: str) -> int:
    """argparse type for worker counts: reject 0/negative/garbage with status 2.

    Validating here (instead of letting ``BatchRunner`` raise) turns
    ``repro batch --jobs 0`` from a raw ``ValueError`` traceback into a clean
    usage error.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type for counts that may be zero (e.g. ``--warmup``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _parse_params(pairs: Sequence[str]) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"error: --param expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        params[key] = value
    return params


def _store_from_args(args: argparse.Namespace) -> Optional[ResultStore]:
    if getattr(args, "no_store", False):
        return None
    root = getattr(args, "store", None)
    return ResultStore(Path(root) if root else default_store_root())


def _select_names(args: argparse.Namespace) -> List[str]:
    selectors = [
        bool(args.names),
        getattr(args, "all_scenarios", False),
        getattr(args, "smoke", False),
    ]
    if sum(selectors) > 1:
        raise SystemExit(
            "error: give scenario names, --all or --smoke -- not a combination"
        )
    if args.names:
        return list(args.names)
    if getattr(args, "smoke", False):
        return REGISTRY.names(tag="smoke")
    return REGISTRY.names()


# -- subcommands -----------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for scenario in REGISTRY:
        spec = scenario.spec
        if args.tag and args.tag not in spec.tags:
            continue
        rows.append(
            (
                spec.name,
                spec.figure or "-",
                spec.title,
                ",".join(spec.tags) or "-",
            )
        )
    print(format_table(["scenario", "figure", "title", "tags"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    store = _store_from_args(args)
    result = REGISTRY.run(
        args.name,
        params=_parse_params(args.param),
        store=store,
        force=args.force,
    )
    print(f"=== {result.name} ===")
    print(result.table)
    origin = "result store" if result.from_store else f"run in {result.elapsed_s:.2f} s"
    print(f"\n[{result.fingerprint[:16]}] {origin}", file=sys.stderr)
    if args.save_results:
        save_result_text(
            Path(args.save_results) / f"{result.name}.txt", result.table, echo=False
        )
    if args.check:
        REGISTRY.verify(args.name, result)
        print(f"checks passed for {args.name}", file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    names = _select_names(args)
    if not names:
        print("no scenarios selected", file=sys.stderr)
        return 1
    store = _store_from_args(args)
    runner = BatchRunner(
        store=store, backend=args.backend, jobs=args.jobs, force=args.force
    )
    report = runner.run(names)
    print(report.summary_table())
    failures = 0
    for item in report.items:
        if not item.ok:
            print(f"ERROR {item.name}: {item.error}", file=sys.stderr)
            failures += 1
        elif args.check and not item.from_store:
            try:
                REGISTRY.verify(item.name, item.result)
            except AssertionError as exc:
                print(f"CHECK FAILED {item.name}: {exc}", file=sys.stderr)
                failures += 1
    if args.save_results:
        for item in report.items:
            if item.ok:
                save_result_text(
                    Path(args.save_results) / f"{item.name}.txt",
                    item.result.table,
                    echo=False,
                )
    return 1 if failures else 0


def _parse_worker_counts(text: str) -> List[int]:
    """``"1,2,4"`` -> ``[1, 2, 4]`` with a clean usage error on garbage."""
    counts: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            value = int(part)
        except ValueError:
            raise SystemExit(
                f"error: --cluster-workers expects comma-separated counts, got {text!r}"
            ) from None
        if value < 1:
            raise SystemExit(f"error: worker counts must be >= 1, got {value}")
        counts.append(value)
    if not counts:
        raise SystemExit("error: --cluster-workers needs at least one count")
    return counts


def _parse_fail_below(pairs: Sequence[str]) -> Dict[str, float]:
    thresholds: Dict[str, float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(
                f"error: --fail-below expects SCENARIO=FACTOR, got {pair!r}"
            )
        name, factor = pair.split("=", 1)
        try:
            thresholds[name] = float(factor)
        except ValueError:
            raise SystemExit(
                f"error: --fail-below factor must be a number, got {factor!r}"
            ) from None
    return thresholds


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.exec import parse_address, run_worker

    try:
        host, port = parse_address(args.connect)
    except ValueError as exc:
        raise SystemExit(f"error: --connect {exc}") from None
    return run_worker(
        host,
        port,
        once=args.once,
        connect_timeout_s=args.connect_timeout_s,
        quiet=args.quiet,
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    names = _select_names(args)
    if not names:
        print("no scenarios selected", file=sys.stderr)
        return 1
    compare = list(args.compare_loop or [])
    if "all" in compare:
        compare = list(names)
    missing = [name for name in compare if name not in names]
    if missing:
        raise SystemExit(
            f"error: --compare-loop scenario(s) not selected: {', '.join(missing)}"
        )
    thresholds = _parse_fail_below(args.fail_below)
    uncompared = sorted(set(thresholds) - set(compare))
    if uncompared:
        raise SystemExit(
            "error: --fail-below needs a loop comparison; add "
            f"--compare-loop {' --compare-loop '.join(uncompared)}"
        )
    ref_thresholds = _parse_fail_below(args.fail_below_ref)
    reference_mode = (args.rng or "seedseq", args.dtype or "float64")
    if ref_thresholds and reference_mode == ("seedseq", "float64"):
        raise SystemExit(
            "error: --fail-below-ref needs a non-reference mode; add "
            "--rng philox and/or --dtype float32"
        )
    cluster_workers = _parse_worker_counts(args.cluster_workers)
    if args.cluster and args.cluster not in names:
        raise SystemExit(
            f"error: --cluster scenario not selected: {args.cluster}"
        )
    if args.fail_below_dispatch is not None and not args.compare_dispatch:
        raise SystemExit(
            "error: --fail-below-dispatch requires --compare-dispatch"
        )
    if args.compare_dispatch and args.compare_dispatch not in names:
        raise SystemExit(
            f"error: --compare-dispatch scenario not selected: {args.compare_dispatch}"
        )
    payload = bench_scenarios(
        names,
        repeats=args.repeats,
        warmup=args.warmup,
        compare_loop=compare,
        params=_parse_params(args.param),
        rng=args.rng,
        dtype=args.dtype,
    )
    if args.cluster:
        payload["cluster_scaling"] = bench_cluster_scaling(
            args.cluster,
            worker_counts=cluster_workers,
            repeats=args.repeats,
            warmup=args.warmup,
            params=_parse_params(args.param),
            rng=args.rng,
            dtype=args.dtype,
        )
    if args.compare_dispatch:
        payload["dispatch_comparison"] = bench_dispatch_comparison(
            args.compare_dispatch,
            repeats=args.repeats,
            warmup=args.warmup,
            params=_parse_params(args.param),
            rng=args.rng,
            dtype=args.dtype,
        )
    rows = []
    for name in names:
        entry = payload["scenarios"][name]
        vec = entry["vectorized"]
        loop = entry.get("loop")
        ref = entry.get("reference")
        if ref:
            vs_ref = f"{entry['speedup_vs_reference_median']:.2f}x"
        elif entry.get("analytic_only"):
            vs_ref = "analytic"
        else:
            vs_ref = "-"
        fractions = vec.get("stage_fractions", {})
        stage_text = " ".join(
            f"{stage}={fractions[stage]:.0%}"
            for stage in ("rng", "forward", "quantize", "metrics")
            if stage in fractions
        )
        rows.append(
            (
                name,
                f"{vec['median_s'] * 1e3:.1f}",
                f"{vec['p90_s'] * 1e3:.1f}",
                vec["engine_passes"],
                f"{loop['median_s'] * 1e3:.1f}" if loop else "-",
                f"{entry['speedup_median']:.2f}x" if loop else "-",
                vs_ref,
                stage_text or "-",
            )
        )
    print(
        format_table(
            ["scenario", "median (ms)", "p90 (ms)", "passes", "loop median (ms)",
             "speedup", "vs ref", "stages"],
            rows,
        )
    )
    if args.cluster:
        scaling = payload["cluster_scaling"]
        serial_ms = scaling["serial"]["median_s"] * 1e3
        print(f"\ncluster scaling for {args.cluster} (serial {serial_ms:.1f} ms):")
        for count, centry in sorted(
            scaling["cluster"].items(), key=lambda kv: int(kv[0])
        ):
            print(
                f"  {count} worker(s): {centry['median_s'] * 1e3:.1f} ms "
                f"({centry['speedup_vs_serial_median']:.2f}x vs serial)"
            )
    if args.compare_dispatch:
        dispatch = payload["dispatch_comparison"]
        serial_ms = dispatch["serial"]["median_s"] * 1e3
        print(
            f"\ndispatch comparison for {args.compare_dispatch} "
            f"(serial {serial_ms:.1f} ms):"
        )
        for label, dentry in dispatch["dispatch"].items():
            print(
                f"  {label:9s} {dentry['median_s'] * 1e3:8.1f} ms "
                f"({dentry['speedup_vs_serial_median']:.2f}x vs serial, "
                f"dispatch overhead {dentry['dispatch_overhead_s'] * 1e3:.1f} ms)"
            )
    target = write_bench_report(payload, args.output)
    print(f"\nwrote {target}", file=sys.stderr)
    failures = check_speedups(payload, thresholds)
    failures += check_speedups(
        payload, ref_thresholds, key="speedup_vs_reference_median"
    )
    if args.fail_below_dispatch is not None:
        warm = payload["dispatch_comparison"]["dispatch"]["warm_shm"]
        ratio = warm["speedup_vs_serial_median"]
        if ratio < args.fail_below_dispatch:
            failures.append(
                f"{args.compare_dispatch}: warm+shm process dispatch at "
                f"{ratio:.2f}x of serial, below the required "
                f"{args.fail_below_dispatch:.2f}x"
            )
    for failure in failures:
        print(f"SPEEDUP CHECK FAILED {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_pool(args: argparse.Namespace) -> int:
    from repro.exec import pool_status, stop_pools

    if args.action == "stop":
        stopped = stop_pools()
        print(f"stopped {stopped} warm pool(s)")
        return 0
    pools = pool_status()
    if not pools:
        print("no live warm pools in this process")
        return 0
    rows = [
        (
            str(pool["jobs"]),
            str(pool["leases"]),
            str(pool["dispatches"]),
            str(pool["restarts"]),
            f"{pool['age_s']:.1f}",
            f"{pool['idle_s']:.1f}",
        )
        for pool in pools
    ]
    print(format_table(
        ["jobs", "leases", "dispatches", "restarts", "age (s)", "idle (s)"], rows
    ))
    return 0


def _artifact_payload(entry: Dict[str, object]) -> Dict[str, object]:
    """The full stored JSON artifact behind one store entry (metrics included)."""
    payload = json.loads(Path(entry["path"]).read_text())
    payload["path"] = str(entry["path"])
    return payload


def _cmd_report(args: argparse.Namespace) -> int:
    store = _store_from_args(args)
    if store is None:
        print("report requires a store", file=sys.stderr)
        return 1
    as_json = args.format == "json"
    entries = store.entries()
    if not entries and not as_json:
        print(f"result store {store.root} is empty")
        return 0
    if args.names:
        wanted = set(args.names)
        missing = wanted - {e["name"] for e in entries}
        if missing:
            print(f"not in store: {', '.join(sorted(missing))}", file=sys.stderr)
            return 1
        shown = set()
        selected = []
        for entry in entries:  # newest first; show each requested name once
            if entry["name"] in wanted and entry["name"] not in shown:
                shown.add(entry["name"])
                selected.append(entry)
        if as_json:
            # Full artifacts (table + metrics + params), machine-readable.
            print(json.dumps([_artifact_payload(e) for e in selected], indent=2,
                             sort_keys=True))
            return 0
        for entry in selected:
            print(f"=== {entry['name']} ===")
            print(entry["table"])
            print()
        return 0
    if as_json:
        records = [
            {
                "name": e["name"],
                "fingerprint": e["fingerprint"],
                "created_at": e["created_at"],
                "elapsed_s": e["elapsed_s"],
                "params": e["params"],
                "path": str(e["path"]),
            }
            for e in entries
        ]
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    rows = [
        (
            e["name"],
            e["fingerprint"][:16],
            e["created_at"] or "-",
            f"{e['elapsed_s']:.2f}",
        )
        for e in entries
    ]
    print(format_table(["scenario", "fingerprint", "created (UTC)", "run time (s)"], rows))
    return 0


# -- lint ------------------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported here: the analysis subsystem is pure stdlib-ast tooling and the
    # run/batch paths should not pay for it.
    from repro.analysis import (
        LINT_SCHEMA,
        all_rules,
        apply_baseline,
        lint_paths,
        load_baseline,
        write_baseline,
    )
    from repro.analysis.findings import Finding
    from repro.analysis.runner import PARSE_RULE_ID
    from repro.analysis.walker import default_lint_paths

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    paths = [Path(p) for p in args.paths] or default_lint_paths()
    try:
        report = lint_paths(paths, rule_filter=args.rule or None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = list(report.findings)
    parse_findings = [
        Finding(
            rule_id=PARSE_RULE_ID, file=f.path, line=f.line, message=f.message
        )
        for f in report.parse_failures
    ]

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.update_baseline:
        if baseline_path is None:
            print("error: --update-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        write_baseline(baseline_path, findings)
        print(f"baseline updated: {len(findings)} finding(s) -> {baseline_path}")
        return 0

    new, expired = findings, []
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        new, expired = apply_baseline(findings, baseline)

    if args.format == "json":
        payload = {
            "schema": LINT_SCHEMA,
            "rules": list(report.rules_run),
            "modules": len(report.modules),
            "counts": report.counts,
            "findings": [f.to_payload() for f in new],
            "baselined": len(findings) - len(new),
            "expired_baseline_entries": [
                {"rule": rule, "file": file, "message": message}
                for rule, file, message in expired
            ],
            "parse_failures": [f.to_payload() for f in parse_findings],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in parse_findings + new:
            print(finding.render())
        for rule, file, message in expired:
            print(f"{file}: {rule} baseline entry no longer matches: {message} "
                  "[remove it from the baseline]")
        baselined = len(findings) - len(new)
        summary = (
            f"{len(report.modules)} module(s), rules {', '.join(report.rules_run)}: "
            f"{len(new)} finding(s)"
        )
        if baselined:
            summary += f", {baselined} baselined"
        if expired:
            summary += f", {len(expired)} expired baseline entr(y/ies)"
        if parse_findings:
            summary += f", {len(parse_findings)} unparseable file(s)"
        print(summary)

    if parse_findings:
        return 2
    return 1 if new or expired else 0


# -- argument parsing ------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's figure/table experiments from the scenario registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--tag", help="only scenarios carrying this tag")
    p_list.set_defaults(func=_cmd_list)

    def add_store_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", metavar="DIR",
                       help=f"result-store directory (default: $REPRO_STORE or {default_store_root()})")
        p.add_argument("--no-store", action="store_true",
                       help="do not read or write the persistent result store")
        p.add_argument("--force", action="store_true",
                       help="re-run even when the store has a matching artifact")
        p.add_argument("--save-results", metavar="DIR",
                       help="additionally write <scenario>.txt table files to DIR")

    p_run = sub.add_parser("run", help="run one scenario and print its table")
    p_run.add_argument("name", help="registered scenario name (see `repro list`)")
    p_run.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                       help="override a scenario parameter (repeatable)")
    p_run.add_argument("--check", action="store_true",
                       help="run the scenario's qualitative shape checks")
    add_store_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_batch = sub.add_parser("batch", help="run many scenarios with a shared cache")
    p_batch.add_argument("names", nargs="*", help="scenario names (default: all)")
    p_batch.add_argument("--all", action="store_true", dest="all_scenarios",
                         help="run every registered scenario (the default when no names given)")
    p_batch.add_argument("--smoke", action="store_true",
                         help="run the fast smoke-tagged subset")
    p_batch.add_argument("--jobs", type=_positive_int, default=None, metavar="N",
                         help="number of workers (default: serial, or all cores "
                              "when --backend names a parallel backend)")
    p_batch.add_argument("--backend", choices=sorted(BACKENDS), default=None,
                         help="execution backend for fresh scenarios: 'serial', "
                              "'threads' (shared cache, GIL-bound), 'processes' "
                              "(GIL-free worker pool) or 'cluster' (TCP workers "
                              "started with `repro worker`; see README). All "
                              "backends are byte-identical to a serial run. "
                              "Default: serial, or threads when --jobs N is "
                              "given alone")
    p_batch.add_argument("--check", action="store_true",
                         help="run shape checks on every freshly computed scenario")
    add_store_args(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_bench = sub.add_parser(
        "bench",
        help="time scenarios (warmup + repeats) and write a BENCH_*.json report",
    )
    p_bench.add_argument("names", nargs="*", help="scenario names (default: all)")
    p_bench.add_argument("--all", action="store_true", dest="all_scenarios",
                         help="benchmark every registered scenario")
    p_bench.add_argument("--smoke", action="store_true",
                         help="benchmark the fast smoke-tagged subset")
    p_bench.add_argument("--repeats", type=_positive_int, default=3, metavar="N",
                         help="timed repeats per scenario (default: 3)")
    p_bench.add_argument("--warmup", type=_non_negative_int, default=1, metavar="N",
                         help="untimed warmup runs per scenario (default: 1)")
    p_bench.add_argument("--compare-loop", action="append", default=[],
                         metavar="SCENARIO",
                         help="additionally time SCENARIO on the legacy "
                              "REPRO_FORWARD=loop path and record the speedup "
                              "(repeatable; 'all' compares every selection)")
    p_bench.add_argument("--fail-below", action="append", default=[],
                         metavar="SCENARIO=FACTOR",
                         help="exit non-zero when SCENARIO's vectorized speedup "
                              "is below FACTOR (repeatable; requires the "
                              "scenario in --compare-loop)")
    p_bench.add_argument("--rng", choices=("seedseq", "philox"), default=None,
                         help="time the headline runs under this REPRO_RNG mode "
                              "(default: ambient environment; non-reference "
                              "modes also time the bit-exact reference and "
                              "record speedup_vs_reference_median)")
    p_bench.add_argument("--dtype", choices=("float64", "float32"), default=None,
                         help="time the headline runs under this REPRO_DTYPE "
                              "mode (default: ambient environment)")
    p_bench.add_argument("--fail-below-ref", action="append", default=[],
                         metavar="SCENARIO=FACTOR",
                         help="exit non-zero when SCENARIO's speedup over the "
                              "bit-exact reference mode is below FACTOR "
                              "(repeatable; requires --rng/--dtype selecting a "
                              "non-reference mode)")
    p_bench.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                         help="override a scenario parameter for every "
                              "benchmarked scenario (repeatable)")
    p_bench.add_argument("--cluster", metavar="SCENARIO", default=None,
                         help="additionally time SCENARIO on localhost clusters "
                              "(fresh coordinator + spawned workers per count) "
                              "and record workers-vs-wall-clock scaling in the "
                              "report's cluster_scaling block")
    p_bench.add_argument("--cluster-workers", default="1,2", metavar="N,M,...",
                         help="comma-separated cluster sizes for --cluster "
                              "(default: 1,2)")
    p_bench.add_argument("--compare-dispatch", nargs="?", metavar="SCENARIO",
                         const="variation_robustness", default=None,
                         help="additionally time SCENARIO (default: "
                              "variation_robustness) on the process backend "
                              "under cold-pool, warm-pool and warm+shm "
                              "dispatch and record medians plus dispatch-"
                              "overhead stage timings in the report's "
                              "dispatch_comparison block")
    p_bench.add_argument("--fail-below-dispatch", type=float, default=None,
                         metavar="FACTOR",
                         help="exit non-zero when the warm+shm process-backend "
                              "run is slower than FACTOR x serial (requires "
                              "--compare-dispatch)")
    p_bench.add_argument("--output", default=DEFAULT_BENCH_PATH, metavar="PATH",
                         help=f"report path (default: {DEFAULT_BENCH_PATH})")
    p_bench.set_defaults(func=_cmd_bench)

    p_worker = sub.add_parser(
        "worker",
        help="join a cluster: execute task chunks for a coordinator "
             "(started by any run/batch using --backend cluster)",
    )
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator endpoint (the cluster backend's "
                               "host/port, default port 7621)")
    p_worker.add_argument("--once", action="store_true",
                          help="exit after one coordinator session instead of "
                               "reconnecting for the next one")
    p_worker.add_argument("--connect-timeout-s", type=float, default=30.0,
                          metavar="S",
                          help="give up when no coordinator appears within S "
                               "seconds (default: 30)")
    p_worker.add_argument("--quiet", action="store_true",
                          help="suppress per-session log lines on stderr")
    p_worker.set_defaults(func=_cmd_worker, no_store=False)

    p_pool = sub.add_parser(
        "pool",
        help="inspect or stop this process's warm worker pools "
             "(REPRO_POOL=warm keeps process pools alive between batches)",
    )
    p_pool.add_argument("action", nargs="?", choices=("status", "stop"),
                        default="status",
                        help="'status' (default) lists live pools (jobs, leases, "
                             "dispatches, age); 'stop' shuts them down. Pools "
                             "are per-process: from a fresh CLI process this "
                             "reports the pools that process created (embedded "
                             "callers and long-lived daemons hold warm pools "
                             "worth inspecting/stopping)")
    p_pool.set_defaults(func=_cmd_pool, no_store=True)

    p_report = sub.add_parser("report", help="inspect the persistent result store")
    p_report.add_argument("names", nargs="*",
                          help="print the stored tables of these scenarios")
    p_report.add_argument("--store", metavar="DIR",
                          help="result-store directory (default: $REPRO_STORE or ./.repro_store)")
    p_report.add_argument("--format", choices=("table", "json"), default="table",
                          help="output format: human-readable table (default) or "
                               "JSON (entry metadata; with names, the full "
                               "stored artifacts including metrics)")
    p_report.set_defaults(func=_cmd_report, no_store=False)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis of the reproducibility contracts (R001-R005)",
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the repro "
                             "package plus the repo's tests/ tree)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    p_lint.add_argument("--rule", action="append", default=[], metavar="RULE_ID",
                        help="run only this rule (repeatable; default: all)")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline of adopted findings: matches are "
                             "subtracted, new findings and expired entries fail")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline FILE from the current findings "
                             "and exit 0")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        # Registry lookups raise KeyError with an actionable message.
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 1
    except AssertionError as exc:
        print(f"check failed: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other CLIs.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
