"""Simulation configuration shared by all analyzers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimulationConfig:
    """Knobs controlling the SimPhony-Sim analyses.

    - ``data_aware``: evaluate data-dependent device power on the actual workload
      operand values (the paper's data-aware mode) instead of nominal worst case;
    - ``use_layout_aware_area``: estimate composite node area with the
      signal-flow-aware floorplanner instead of the footprint sum;
    - ``include_memory``: add on-chip buffer area/energy/power to the reports;
    - ``memory_tech_nm`` / ``glb_buswidth_bits``: CACTI-substitute parameters
      (the paper uses CACTI at 45 nm);
    - ``device_spacing_um`` / ``node_boundary_um``: floorplanner spacing rules;
    - ``value_sample_limit``: data-aware power averages subsample operand tensors
      larger than this many elements (deterministic) to bound runtime.
    """

    data_aware: bool = True
    use_layout_aware_area: bool = True
    include_memory: bool = True
    memory_tech_nm: float = 45.0
    glb_buswidth_bits: int = 256
    hbm_energy_pj_per_bit: float = 3.9
    device_spacing_um: float = 5.0
    node_boundary_um: float = 10.0
    value_sample_limit: int = 65536
    include_idle_gating: bool = True

    def __post_init__(self) -> None:
        if self.memory_tech_nm <= 0:
            raise ValueError("memory_tech_nm must be positive")
        if self.glb_buswidth_bits <= 0:
            raise ValueError("glb_buswidth_bits must be positive")
        if self.hbm_energy_pj_per_bit < 0:
            raise ValueError("hbm_energy_pj_per_bit must be non-negative")
        if self.value_sample_limit < 1:
            raise ValueError("value_sample_limit must be positive")
        if self.device_spacing_um < 0 or self.node_boundary_um < 0:
            raise ValueError("spacings must be non-negative")
