"""Report helpers: component labelling, breakdown merging, text rendering."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.arch.instance import ArchInstance
from repro.utils.format import format_breakdown, format_table

#: Device-library name -> human-readable component label used in breakdowns.
#: Matches the component legends of the paper's Figs. 7-11.
COMPONENT_LABELS: Dict[str, str] = {
    "dac": "DAC",
    "adc": "ADC",
    "tia": "TIA",
    "integrator": "Integrator",
    "digital_control": "Digital",
    "mzm": "MZM",
    "mrm": "MZM",
    "mzi": "PS",
    "phase_shifter": "PS",
    "ps_bias": "PS",
    "mrr": "MRR",
    "pcm": "PCM",
    "pd": "PD",
    "laser": "Laser",
    "microcomb": "Laser",
    "coupler": "Coupling",
    "y_branch": "Y Branch",
    "mmi": "MMI",
    "wdm_mux": "MMI",
    "crossing": "Crossing",
    "directional_coupler": "Node",
}


def component_label(instance: ArchInstance) -> str:
    """Map an architecture instance to its breakdown component label."""
    if instance.is_composite:
        return "Node"
    return COMPONENT_LABELS.get(instance.device, instance.device)


def merge_breakdowns(breakdowns: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Sum a sequence of component breakdowns into one."""
    merged: Dict[str, float] = {}
    for breakdown in breakdowns:
        for key, value in breakdown.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged


def scale_breakdown(breakdown: Mapping[str, float], factor: float) -> Dict[str, float]:
    """Multiply every component of a breakdown by ``factor``."""
    return {key: value * factor for key, value in breakdown.items()}


def render_breakdown(breakdown: Mapping[str, float], unit: str = "") -> str:
    """Human-readable table of a breakdown, sorted by descending value."""
    return format_breakdown(dict(breakdown), unit=unit)


def render_comparison(
    label_a: str,
    breakdown_a: Mapping[str, float],
    label_b: str,
    breakdown_b: Mapping[str, float],
) -> str:
    """Side-by-side comparison table of two breakdowns (e.g. SimPhony vs. reference)."""
    keys = sorted(set(breakdown_a) | set(breakdown_b))
    rows = []
    for key in keys:
        a = breakdown_a.get(key, 0.0)
        b = breakdown_b.get(key, 0.0)
        ratio = a / b if b else float("inf") if a else 1.0
        rows.append((key, a, b, ratio))
    rows.append(
        (
            "TOTAL",
            sum(breakdown_a.values()),
            sum(breakdown_b.values()),
            (sum(breakdown_a.values()) / sum(breakdown_b.values()))
            if sum(breakdown_b.values())
            else float("inf"),
        )
    )
    return format_table(["component", label_a, label_b, "ratio"], rows)
