"""Report helpers: component labelling, breakdown merging, text rendering.

This module is the single text-formatting path shared by the scenario CLI
(:mod:`repro.cli`), the batch runner (:mod:`repro.scenarios.runner`) and the
benchmark shims under ``benchmarks/`` -- they all render tables via
:func:`repro.utils.format.format_table` (re-exported here) and persist them with
:func:`save_result_text`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Mapping, Union

from repro.arch.instance import ArchInstance
from repro.utils.format import format_breakdown, format_table

__all__ = [
    "COMPONENT_LABELS",
    "component_label",
    "merge_breakdowns",
    "scale_breakdown",
    "render_breakdown",
    "render_comparison",
    "format_breakdown",
    "format_table",
    "save_result_text",
]

#: Device-library name -> human-readable component label used in breakdowns.
#: Matches the component legends of the paper's Figs. 7-11.
COMPONENT_LABELS: Dict[str, str] = {
    "dac": "DAC",
    "adc": "ADC",
    "tia": "TIA",
    "integrator": "Integrator",
    "digital_control": "Digital",
    "mzm": "MZM",
    "mrm": "MZM",
    "mzi": "PS",
    "phase_shifter": "PS",
    "ps_bias": "PS",
    "mrr": "MRR",
    "pcm": "PCM",
    "pd": "PD",
    "laser": "Laser",
    "microcomb": "Laser",
    "coupler": "Coupling",
    "y_branch": "Y Branch",
    "mmi": "MMI",
    "wdm_mux": "MMI",
    "crossing": "Crossing",
    "directional_coupler": "Node",
}


def component_label(instance: ArchInstance) -> str:
    """Map an architecture instance to its breakdown component label."""
    if instance.is_composite:
        return "Node"
    return COMPONENT_LABELS.get(instance.device, instance.device)


def merge_breakdowns(breakdowns: Iterable[Mapping[str, float]]) -> Dict[str, float]:
    """Sum a sequence of component breakdowns into one."""
    merged: Dict[str, float] = {}
    for breakdown in breakdowns:
        for key, value in breakdown.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged


def scale_breakdown(breakdown: Mapping[str, float], factor: float) -> Dict[str, float]:
    """Multiply every component of a breakdown by ``factor``."""
    return {key: value * factor for key, value in breakdown.items()}


def render_breakdown(breakdown: Mapping[str, float], unit: str = "") -> str:
    """Human-readable table of a breakdown, sorted by descending value."""
    return format_breakdown(dict(breakdown), unit=unit)


def render_comparison(
    label_a: str,
    breakdown_a: Mapping[str, float],
    label_b: str,
    breakdown_b: Mapping[str, float],
) -> str:
    """Side-by-side comparison table of two breakdowns (e.g. SimPhony vs. reference)."""
    keys = sorted(set(breakdown_a) | set(breakdown_b))
    rows = []
    for key in keys:
        a = breakdown_a.get(key, 0.0)
        b = breakdown_b.get(key, 0.0)
        ratio = a / b if b else float("inf") if a else 1.0
        rows.append((key, a, b, ratio))
    rows.append(
        (
            "TOTAL",
            sum(breakdown_a.values()),
            sum(breakdown_b.values()),
            (sum(breakdown_a.values()) / sum(breakdown_b.values()))
            if sum(breakdown_b.values())
            else float("inf"),
        )
    )
    return format_table(["component", label_a, label_b, "ratio"], rows)


def save_result_text(path: Union[str, Path], text: str, echo: bool = True) -> Path:
    """Persist a rendered result table to ``path`` and optionally echo it.

    The canonical persistence helper for figure/table reproductions (formerly
    ``benchmarks/helpers.save_result``): writes ``text`` plus a trailing newline
    to ``path`` (creating parent directories) and, when ``echo``, prints the
    table under a ``=== <stem> ===`` banner exactly like the seed harness did.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    if echo:
        print(f"\n=== {path.stem} ===\n{text}\n")
    return path
