"""Physical constants shared by the link-budget / receiver-noise math.

Exact SI values (2019 redefinition).  Kept in one place so the SNR analyzer,
energy models and the variation subsystem all agree on them instead of each
module re-declaring private copies.
"""

from __future__ import annotations

#: Elementary charge ``q`` in coulomb (exact, SI 2019).
ELECTRON_CHARGE_C = 1.602176634e-19

#: Boltzmann constant ``k`` in joule per kelvin (exact, SI 2019).
BOLTZMANN_J_PER_K = 1.380649e-23

__all__ = ["ELECTRON_CHARGE_C", "BOLTZMANN_J_PER_K"]
