"""Bandwidth-adaptive memory modeling and data-movement energy.

Builds the HBM/GLB/LB/RF hierarchy sized for the workload, verifies (and adapts) the
GLB banking so the per-cycle operand demand of the dataflow is met without stalling
the cores, and turns the per-level traffic of a mapping into data-movement energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.arch.architecture import Architecture
from repro.core.config import SimulationConfig
from repro.dataflow.mapping import Mapping
from repro.memory.cacti import HBMModel
from repro.memory.hierarchy import MemoryHierarchy, MemoryLevel


@dataclass
class MemoryReport:
    """Memory hierarchy configuration, bandwidth check and energy for one run."""

    hierarchy: MemoryHierarchy
    glb_blocks: int
    demand_bytes_per_ns: float
    glb_bandwidth_bytes_per_ns: float
    traffic_bits: Dict[MemoryLevel, float] = field(default_factory=dict)
    energy_pj: Dict[MemoryLevel, float] = field(default_factory=dict)
    onchip_area_mm2: float = 0.0
    leakage_mw: float = 0.0
    onchip_leakage_mw: float = 0.0

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())

    @property
    def bandwidth_satisfied(self) -> bool:
        return self.glb_bandwidth_bytes_per_ns >= self.demand_bytes_per_ns


class MemoryAnalyzer:
    """Sizes the memory hierarchy and accounts for data-movement energy."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()

    # -- hierarchy construction -----------------------------------------------------
    def build_hierarchy(
        self,
        mappings: Iterable[Mapping],
        arch: Architecture,
    ) -> MemoryHierarchy:
        """Size GLB/LB/RF from the workload set per the paper's level-sizing rule."""
        mappings = list(mappings)
        if not mappings:
            return MemoryHierarchy.default(
                buswidth_bits=self.config.glb_buswidth_bits,
                tech_nm=self.config.memory_tech_nm,
            )
        max_layer_bytes = max(m.workload.total_bytes for m in mappings)
        tile_bytes = max(
            (
                m.m_parallel * m.workload.k * m.workload.input_bits
                + m.workload.k * m.n_parallel * m.workload.weight_bits
                + m.m_parallel * m.n_parallel * m.workload.output_bits
            )
            / 8.0
            for m in mappings
        )
        cycle_bytes = max(m.bytes_per_cycle.get("total", 0.0) for m in mappings)
        hbm = HBMModel(energy_pj_per_bit=self.config.hbm_energy_pj_per_bit)
        return MemoryHierarchy.for_workload(
            max_layer_bytes=max_layer_bytes,
            tile_bytes=tile_bytes,
            cycle_bytes=cycle_bytes,
            buswidth_bits=self.config.glb_buswidth_bits,
            tech_nm=self.config.memory_tech_nm,
            hbm=hbm,
        )

    # -- bandwidth ---------------------------------------------------------------------
    def bandwidth_demand_bytes_per_ns(self, mappings: Iterable[Mapping], arch: Architecture) -> float:
        """Worst-case GLB bandwidth demand across the workloads (bytes per ns).

        Implements the paper's ``BW_GLB = MaxLayerSize * f / (Np * Dp * Mp)`` rule:
        the layer's operands must stream out of the GLB over the layer's compute
        cycles, with data sharing/broadcast (the register file and local buffer
        absorb the per-cycle reuse) already accounted for by dividing by the full
        blocked iteration count.
        """
        demand = 0.0
        for mapping in mappings:
            cycles = max(mapping.compute_cycles_per_forward, 1)
            layer_bytes = mapping.workload.total_bytes
            per_cycle = layer_bytes / cycles
            demand = max(demand, per_cycle * arch.frequency_ghz)
        return demand

    # -- main entry point ----------------------------------------------------------------
    def analyze(
        self,
        mappings: Iterable[Mapping],
        arch: Architecture,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> MemoryReport:
        mappings = list(mappings)
        hierarchy = hierarchy or self.build_hierarchy(mappings, arch)
        demand = self.bandwidth_demand_bytes_per_ns(mappings, arch)
        glb_blocks = hierarchy.adapt_glb_bandwidth(demand) if demand > 0 else 1
        glb_bw = hierarchy.glb.bandwidth_bits_per_ns / 8.0

        traffic: Dict[MemoryLevel, float] = {level: 0.0 for level in MemoryLevel}
        for mapping in mappings:
            for level, bits in mapping.traffic_bits.items():
                traffic[level] = traffic.get(level, 0.0) + bits

        energy: Dict[MemoryLevel, float] = {}
        for level, bits in traffic.items():
            if bits <= 0:
                energy[level] = 0.0
                continue
            energy[level] = hierarchy.access_energy_pj(level, bits)

        return MemoryReport(
            hierarchy=hierarchy,
            glb_blocks=glb_blocks,
            demand_bytes_per_ns=demand,
            glb_bandwidth_bytes_per_ns=glb_bw,
            traffic_bits=traffic,
            energy_pj=energy,
            onchip_area_mm2=hierarchy.onchip_area_mm2(),
            leakage_mw=hierarchy.leakage_mw(),
            onchip_leakage_mw=hierarchy.onchip_leakage_mw(),
        )
