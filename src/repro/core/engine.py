"""The staged evaluation engine: composable, memoized simulation passes.

The seed's ``Simulator.run`` was a monolith; this module decomposes it into the
pipeline of the paper's Fig. 1, one pass per analysis stage::

    route -> map -> memory -> link-budget -> area -> latency/energy -> aggregate

Every pass reads and writes a shared :class:`EvaluationContext` and memoizes its
result in a shared :class:`~repro.core.cache.EvaluationCache` keyed by a canonical
fingerprint of exactly the inputs it consumes:

- the *map* pass keys on the workload digest plus the architecture's resolved
  parallel dimensions, so precision or frequency changes don't invalidate mappings;
- the *critical-path* half of the link budget keys on the netlist topology and the
  resolved per-instance losses, which for most templates depend on a subset of the
  architecture parameters (e.g. TeMPO's broadcast losses depend on H and W but not
  on the wavelength count);
- the node *floorplan* keys on the node netlist and device geometry only, so it is
  computed once per template regardless of how many grid points a sweep visits;
- data-aware *device power* averages key on the device model and the workload
  operand digest, shared by every design point that simulates the same tensors.

Architecture construction itself is a pass: templates consume the swept grid
dimensions (``num_tiles``/``cores_per_tile``/``core_height``/``core_width``) only
through lazily-evaluated symbolic scaling rules, so a built architecture can be
*rebound* to a new configuration that differs only in those fields
(:func:`rebind_architecture`) instead of re-running the template.  Fields that
templates bake into device models (bitwidths, clock, wavelengths, temporal
accumulation) force a real rebuild; :data:`REBINDABLE_FIELDS` records the contract.

``Simulator`` (:mod:`repro.core.simulator`) remains a thin facade over this engine
with caching disabled, reproducing the seed behaviour bit for bit; the
design-space explorer shares one enabled cache across all points of a sweep.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import threading
import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.architecture import Architecture, ArchitectureConfig, HeterogeneousArchitecture
from repro.core.area import AreaAnalyzer, AreaReport
from repro.core.cache import (
    EvaluationCache,
    fingerprint,
    netlist_fingerprint,
    workload_fingerprint,
)
from repro.core.config import SimulationConfig
from repro.core.energy import EnergyAnalyzer, EnergyReport
from repro.core.latency import LatencyAnalyzer, LatencyReport
from repro.core.link_budget import LinkBudgetAnalyzer, LinkBudgetReport
from repro.core.memory_analyzer import MemoryAnalyzer, MemoryReport
from repro.core.report import merge_breakdowns, render_breakdown
from repro.core.snr import SNRAnalyzer, SNRReport
from repro.dataflow.gemm import GEMMWorkload
from repro.dataflow.mapping import DataflowMapper, Mapping
from repro.dataflow.scheduler import HeterogeneousMapper
from repro.netlist.dag import CriticalPath
from repro.netlist.netlist import Netlist
from repro.onn.workload import LayerWorkload

WorkloadLike = Union[GEMMWorkload, LayerWorkload]

#: ArchitectureConfig fields that templates consume only through symbolic scaling
#: rules (lazily evaluated from ``arch.config``), so a built architecture can be
#: rebound to a config differing only in these without re-running the template.
#: Everything else (bitwidths, clock, wavelengths, temporal accumulation) is baked
#: into device models or the dataflow spec at build time and forces a rebuild.
REBINDABLE_FIELDS = frozenset(
    {"num_tiles", "cores_per_tile", "core_height", "core_width", "name"}
)


# -- result records (shared with the Simulator facade) --------------------------------


@dataclass
class LayerResult:
    """Per-layer simulation outcome."""

    workload: GEMMWorkload
    arch_name: str
    mapping: Mapping
    latency: LatencyReport
    energy: EnergyReport

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def total_cycles(self) -> int:
        return self.latency.total_cycles

    @property
    def total_energy_pj(self) -> float:
        return self.energy.total_pj


@dataclass
class SimulationResult:
    """Aggregated result of simulating a workload set on an (heterogeneous) system.

    The merged aggregate views (``energy_breakdown_pj`` and everything derived
    from it, plus the area breakdown) are ``functools.cached_property`` values:
    they are merged once on first access and re-used afterwards, since results are
    fully populated before they are handed out.  Treat a returned result as
    immutable; mutate copies if you need to edit layers.
    """

    layers: List[LayerResult] = field(default_factory=list)
    area_reports: Dict[str, AreaReport] = field(default_factory=dict)
    link_budgets: Dict[str, LinkBudgetReport] = field(default_factory=dict)
    memory: Optional[MemoryReport] = None
    config: SimulationConfig = field(default_factory=SimulationConfig)

    # -- latency -----------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return sum(layer.latency.total_cycles for layer in self.layers)

    @cached_property
    def total_time_ns(self) -> float:
        return sum(layer.latency.total_time_ns for layer in self.layers)

    @cached_property
    def total_macs(self) -> int:
        return sum(layer.workload.num_macs for layer in self.layers)

    @property
    def effective_tops(self) -> float:
        if self.total_time_ns <= 0:
            return 0.0
        return 2.0 * self.total_macs / self.total_time_ns / 1e3

    # -- energy / power -----------------------------------------------------------
    @cached_property
    def energy_breakdown_pj(self) -> Dict[str, float]:
        return merge_breakdowns(layer.energy.breakdown_pj for layer in self.layers)

    @cached_property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_uj(self) -> float:
        return self.total_energy_pj / 1e6

    @cached_property
    def average_power_mw(self) -> Dict[str, float]:
        time_ns = self.total_time_ns
        if time_ns <= 0:
            return {}
        return {key: value / time_ns for key, value in self.energy_breakdown_pj.items()}

    @cached_property
    def total_power_w(self) -> float:
        return sum(self.average_power_mw.values()) / 1e3

    @property
    def energy_per_mac_pj(self) -> float:
        macs = self.total_macs
        return self.total_energy_pj / macs if macs else 0.0

    # -- area ---------------------------------------------------------------------
    @cached_property
    def area_breakdown_mm2(self) -> Dict[str, float]:
        merged = merge_breakdowns(
            {k: v for k, v in report.breakdown_mm2.items() if k != "Mem"}
            for report in self.area_reports.values()
        )
        if self.memory is not None and self.config.include_memory:
            merged["Mem"] = self.memory.onchip_area_mm2
        return merged

    @cached_property
    def total_area_mm2(self) -> float:
        return sum(self.area_breakdown_mm2.values())

    # -- per-layer / per-arch views ----------------------------------------------------
    def layers_on(self, arch_name: str) -> List[LayerResult]:
        return [layer for layer in self.layers if layer.arch_name == arch_name]

    def layer(self, name: str) -> LayerResult:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no simulated layer named {name!r}")

    def energy_by_arch(self) -> Dict[str, float]:
        by_arch: Dict[str, float] = {}
        for layer in self.layers:
            by_arch[layer.arch_name] = by_arch.get(layer.arch_name, 0.0) + layer.total_energy_pj
        return by_arch

    # -- rendering ------------------------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"layers simulated    : {len(self.layers)}",
            f"total MACs          : {self.total_macs}",
            f"total cycles        : {self.total_cycles}",
            f"total time          : {self.total_time_ns:.1f} ns",
            f"total energy        : {self.total_energy_uj:.4f} uJ",
            f"average power       : {self.total_power_w:.3f} W",
            f"energy per MAC      : {self.energy_per_mac_pj:.3f} pJ",
            f"total area          : {self.total_area_mm2:.3f} mm2",
            "",
            "energy breakdown (pJ):",
            render_breakdown(self.energy_breakdown_pj, unit="pJ"),
            "",
            "area breakdown (mm2):",
            render_breakdown(self.area_breakdown_mm2, unit="mm2"),
        ]
        return "\n".join(lines)


# -- architecture construction pass ---------------------------------------------------


def rebind_architecture(
    arch: Architecture,
    config: ArchitectureConfig,
    name: Optional[str] = None,
) -> Architecture:
    """Clone ``arch`` with a new config, sharing its validated symbolic structure.

    Valid only when ``config`` differs from ``arch.config`` in
    :data:`REBINDABLE_FIELDS`: those parameters enter every analysis lazily via
    ``arch.config.scaling_params()``, so the instance groups, netlists, device
    library, taxonomy and dataflow spec can be shared as-is (they are treated as
    immutable after construction).  Validation is skipped -- the structure was
    already validated when ``arch`` was built.
    """
    for f in dataclasses.fields(config):
        if f.name in REBINDABLE_FIELDS:
            continue
        if getattr(config, f.name) != getattr(arch.config, f.name):
            raise ValueError(
                f"cannot rebind {arch.name!r}: field {f.name!r} differs "
                f"({getattr(arch.config, f.name)!r} -> {getattr(config, f.name)!r}) "
                "and is baked into the built structure"
            )
    clone = Architecture.__new__(Architecture)
    clone.name = name if name is not None else arch.name
    clone.config = config
    clone.library = arch.library
    clone.instances = arch.instances
    clone.link_netlist = arch.link_netlist
    clone.node_netlist = arch.node_netlist
    clone.taxonomy = arch.taxonomy
    clone.dataflow = arch.dataflow
    clone.node_device_spacing_um = arch.node_device_spacing_um
    clone.node_boundary_um = arch.node_boundary_um
    # Clones share the base's structure token, so structure-keyed memoization
    # (e.g. the optics profile) hits across every rebound configuration.
    clone._repro_structure_token = structure_token(arch)
    return clone


_STRUCTURE_TOKENS = itertools.count()


def structure_token(arch: Architecture) -> int:
    """Cheap identity of an architecture's shared symbolic structure.

    Assigned once per built architecture and propagated to rebound clones;
    distinct builds always get distinct tokens, so structure-keyed cache
    entries are conservative (never wrongly shared)."""
    token = getattr(arch, "_repro_structure_token", None)
    if token is None:
        token = next(_STRUCTURE_TOKENS)
        arch._repro_structure_token = token
    return token


_BUILDER_TOKENS = itertools.count()


def builder_key(builder: Callable[..., Architecture]) -> tuple:
    """Stable cache identity of an architecture builder.

    The readable ``module.qualname`` alone is ambiguous -- two closures or
    lambdas from the same scope share it -- so a monotonically-assigned token is
    attached to the function object on first use.  Distinct builder objects
    always get distinct tokens, so shared caches never confuse builders; the
    cost is that re-created closures (new objects each call) never share cache
    entries, which is the conservative direction.
    """
    token = getattr(builder, "_repro_builder_token", None)
    if token is None:
        token = next(_BUILDER_TOKENS)
        try:
            builder._repro_builder_token = token
        except (AttributeError, TypeError):
            # Builtins / partials without attribute support: fall back to the
            # object id, stable for the builder's lifetime.
            token = ("id", id(builder))
    module = getattr(builder, "__module__", "?")
    qualname = getattr(builder, "__qualname__", repr(builder))
    return (f"{module}.{qualname}", token)


def resolve_architecture(
    builder: Callable[..., Architecture],
    config: ArchitectureConfig,
    name: Optional[str] = None,
    cache: Optional[EvaluationCache] = None,
    rebindable_fields: frozenset = REBINDABLE_FIELDS,
) -> Architecture:
    """Build (or rebind) an architecture for ``config`` through the cache.

    The *build* stage is keyed by the structural projection of the config (every
    field outside ``rebindable_fields``); the *arch* stage is keyed by the full
    config, storing cheap rebound clones of the structural build.  With no cache
    (or a disabled one) this is exactly ``builder(config=config, name=...)``.
    """
    resolved_name = name if name is not None else config.name
    if cache is None or not cache.enabled:
        return builder(config=config, name=resolved_name)
    structural = tuple(
        (f.name, getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name not in rebindable_fields
    )
    struct_key = fingerprint("build", builder_key(builder), structural)
    # The name is deliberately outside the structural key: a hit with a
    # different name/config is detected below and rebound, never returned as-is.
    base = cache.get_or_compute(  # repro-lint: ignore[R002]
        "build", struct_key, lambda: builder(config=config, name=resolved_name)
    )
    if base.config == config and base.name == resolved_name:
        return base
    return rebind_architecture(base, config, resolved_name)


# -- the shared pass context ----------------------------------------------------------


@dataclass
class EvaluationContext:
    """Mutable state threaded through the evaluation passes.

    Each pass fills in the fields it owns; later passes read them.  A pass left
    out of a custom pipeline simply leaves its fields at their defaults, so
    downstream passes can degrade gracefully (e.g. running without the memory
    pass produces no data-movement energy, like ``include_memory=False``).
    """

    system: HeterogeneousArchitecture
    config: SimulationConfig
    workloads: List[WorkloadLike]
    single_arch: Optional[Architecture] = None
    type_rules: Dict[str, str] = field(default_factory=dict)
    default_subarch: Optional[str] = None
    # route ->
    routed: List[Tuple[GEMMWorkload, Architecture]] = field(default_factory=list)
    # map ->
    mappings: List[Tuple[GEMMWorkload, Architecture, Mapping]] = field(default_factory=list)
    # memory ->
    memory_report: Optional[MemoryReport] = None
    memory_leakage_mw: float = 0.0
    # link budget / area ->
    link_budgets: Dict[str, LinkBudgetReport] = field(default_factory=dict)
    area_reports: Dict[str, AreaReport] = field(default_factory=dict)
    # latency / energy ->
    layers: List[LayerResult] = field(default_factory=list)
    # variation-aware accuracy (set by EvaluationEngine.run_accuracy) ->
    accuracy_request: Optional[object] = None
    snr_reports: Dict[str, SNRReport] = field(default_factory=dict)
    accuracy_report: Optional[object] = None
    # aggregate ->
    result: Optional[SimulationResult] = None

    def distinct_archs(self) -> List[Architecture]:
        """The unique sub-architectures referenced by the mapped workloads."""
        seen: Dict[str, Architecture] = {}
        for _, arch, _ in self.mappings:
            seen.setdefault(arch.name, arch)
        return list(seen.values())


class EnginePass:
    """One composable stage of the evaluation pipeline."""

    name = "pass"

    def __init__(self, engine: "EvaluationEngine") -> None:
        self.engine = engine

    def run(self, ctx: EvaluationContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RoutePass(EnginePass):
    """Assign every workload to a sub-architecture (trivial for single-arch runs)."""

    name = "route"

    def run(self, ctx: EvaluationContext) -> None:
        if ctx.single_arch is not None:
            arch = ctx.single_arch
            ctx.routed = [
                (w.gemm if isinstance(w, LayerWorkload) else w, arch)
                for w in ctx.workloads
            ]
            return
        layer_workloads = [
            w if isinstance(w, LayerWorkload) else LayerWorkload(
                gemm=w, layer_name=w.name, layer_type=w.layer_type
            )
            for w in ctx.workloads
        ]
        het_mapper = HeterogeneousMapper(
            ctx.system, type_rules=ctx.type_rules, default_subarch=ctx.default_subarch
        )
        ctx.routed = [(a.workload.gemm, a.arch) for a in het_mapper.assign(layer_workloads)]


class MapPass(EnginePass):
    """Map each routed workload onto its architecture (memoized in the mapper)."""

    name = "map"

    def run(self, ctx: EvaluationContext) -> None:
        mapper = self.engine.mapper
        ctx.mappings = [
            (gemm, arch, mapper.map(gemm, arch)) for gemm, arch in ctx.routed
        ]


def _mapping_key(mapping: Mapping) -> tuple:
    """Identity tuple of a mapping: workload digest plus its blocking factors."""
    return (
        workload_fingerprint(mapping.workload),
        mapping.arch_name,
        mapping.m_parallel,
        mapping.n_parallel,
        mapping.k_parallel,
        mapping.m_iters,
        mapping.n_iters,
        mapping.k_iters,
        mapping.forwards,
        mapping.temporal_accumulation,
        mapping.compute_cycles_per_forward,
        mapping.reconfig_events,
        mapping.reconfig_cycles_per_event,
        mapping.frequency_ghz,
    )


class MemoryPass(EnginePass):
    """Size the shared, bandwidth-adapted memory hierarchy for the workload set."""

    name = "memory"

    def run(self, ctx: EvaluationContext) -> None:
        if not ctx.mappings:
            return
        all_mappings = [m for _, _, m in ctx.mappings]
        reference_arch = ctx.mappings[0][1]
        config = self.engine.config
        if not self.engine.cache.enabled:
            ctx.memory_report = self.engine.memory_analyzer.analyze(all_mappings, reference_arch)
            ctx.memory_leakage_mw = (
                ctx.memory_report.onchip_leakage_mw if config.include_memory else 0.0
            )
            return
        # Raw tuple key from each mapping's identity fields (its traffic tables
        # are pure functions of these) -- no digesting on the hot path.
        key = (
            tuple(_mapping_key(m) for m in all_mappings),
            reference_arch.frequency_ghz,
            config.glb_buswidth_bits,
            config.memory_tech_nm,
            config.hbm_energy_pj_per_bit,
        )
        ctx.memory_report = self.engine.cache.get_or_compute(
            self.name,
            key,
            lambda: self.engine.memory_analyzer.analyze(all_mappings, reference_arch),
        )
        ctx.memory_leakage_mw = (
            ctx.memory_report.onchip_leakage_mw if config.include_memory else 0.0
        )


class LinkBudgetPass(EnginePass):
    """Per-architecture link budget, with the critical path memoized separately.

    The critical path is keyed by the link netlist topology and the *resolved*
    per-instance losses (device loss x evaluated multiplier), so architectures
    that differ only in parameters the optical path does not traverse (e.g.
    wavelength count on TeMPO) share one longest-path computation.  Linear-chain
    netlists additionally skip the graph machinery entirely when caching is on;
    the arithmetic is identical to the DAG longest-path accumulation.
    """

    name = "link_budget"

    def run(self, ctx: EvaluationContext) -> None:
        for arch in ctx.distinct_archs():
            if arch.name not in ctx.link_budgets:
                ctx.link_budgets[arch.name] = self.engine.link_budget_for(arch)


def _chain_order(netlist: Netlist) -> Optional[List[str]]:
    """Instance order of a purely linear netlist, or None if it branches."""
    successor: Dict[str, str] = {}
    predecessor: Dict[str, str] = {}
    for src, dst in netlist.edge_list():
        if src in successor or dst in predecessor:
            return None
        successor[src] = dst
        predecessor[dst] = src
    if not successor:
        return None
    starts = [name for name in netlist.instances if name not in predecessor]
    if len(starts) != 1:
        return None
    order = [starts[0]]
    while order[-1] in successor:
        order.append(successor[order[-1]])
    if len(order) != len(netlist):
        return None
    return order


class ReceiverPrecisionPass(EnginePass):
    """Receiver SNR and effective resolvable bits for every target architecture.

    Derives the received optical power from the (memoized) link budget, applies
    the accuracy request's deterministic noise penalty (the static part of any
    :class:`~repro.variation.models.LinkLossDrift`), and memoizes the resulting
    :class:`~repro.core.snr.SNRReport` on the link's operating point -- two
    design points with the same insertion loss, laser power, clock and static
    penalty share one SNR computation.
    """

    name = "receiver_precision"

    def run(self, ctx: EvaluationContext) -> None:
        request = ctx.accuracy_request
        static_loss_db = (
            float(request.noise.static_loss_db()) if request is not None else 0.0
        )
        for arch in self._target_archs(ctx):
            if arch.name in ctx.snr_reports:
                continue
            link = ctx.link_budgets.get(arch.name)
            if link is None:
                link = self.engine.link_budget_for(arch)
                ctx.link_budgets[arch.name] = link
            ctx.snr_reports[arch.name] = self._snr(arch, link, static_loss_db)

    @staticmethod
    def _target_archs(ctx: EvaluationContext) -> List[Architecture]:
        archs = ctx.distinct_archs()
        if not archs and ctx.single_arch is not None:
            archs = [ctx.single_arch]
        return archs

    def _snr(
        self, arch: Architecture, link: LinkBudgetReport, static_loss_db: float
    ) -> SNRReport:
        analyzer = self.engine.snr_analyzer
        bandwidth_ghz = arch.config.frequency_ghz

        def compute() -> SNRReport:
            received_mw = link.laser_optical_power_mw * 10.0 ** (
                -(link.insertion_loss_db + static_loss_db) / 10.0
            )
            return analyzer.analyze_received_power(received_mw, bandwidth_ghz)

        cache = self.engine.cache
        if not cache.enabled:
            return compute()
        key = fingerprint(
            link.laser_optical_power_mw,
            link.insertion_loss_db,
            bandwidth_ghz,
            static_loss_db,
            analyzer.responsivity_a_per_w,
            analyzer.load_resistance_ohm,
            analyzer.temperature_k,
            analyzer.rin_db_per_hz,
        )
        return cache.get_or_compute(self.name, key, compute)


class MonteCarloAccuracyPass(EnginePass):
    """Monte Carlo inference accuracy under the context's accuracy request.

    The whole study -- every trial -- is memoized as one entry keyed by the
    (architecture-derived link operating point + DAC/ADC bits, noise spec,
    model, inputs, trials, seed) triple, so re-evaluating an unchanged
    (arch, noise-spec, workload) combination is a single cache hit.  Fresh
    studies fan their independent trials out over the request's execution
    backend (:mod:`repro.exec`); results are backend-invariant by construction.
    """

    name = "mc_accuracy"

    def run(self, ctx: EvaluationContext) -> None:
        request = ctx.accuracy_request
        if request is None:
            return
        # Lazy import: repro.variation imports the engine for its convenience
        # entry points, so the engine only touches it when accuracy is asked for.
        from repro.onn.layers import dtype_mode, forward_mode
        from repro.variation.montecarlo import LinkOperatingPoint, run_monte_carlo
        from repro.variation.sampler import rng_mode

        archs = ReceiverPrecisionPass._target_archs(ctx)
        if not archs:
            raise ValueError("accuracy evaluation needs a target architecture")
        arch = archs[0]
        link_report = ctx.link_budgets[arch.name]
        link = LinkOperatingPoint(
            optical_power_mw=link_report.laser_optical_power_mw,
            insertion_loss_db=link_report.insertion_loss_db,
            bandwidth_ghz=arch.config.frequency_ghz,
            analyzer=self.engine.snr_analyzer,
        )
        nominal_snr = ctx.snr_reports.get(arch.name)
        bits = (
            arch.config.input_bits,
            arch.config.weight_bits,
            arch.config.output_bits,
        )

        def compute():
            return run_monte_carlo(
                request,
                input_bits=bits[0],
                weight_bits=bits[1],
                output_bits=bits[2],
                link=link,
                nominal_snr=nominal_snr,
            )

        cache = self.engine.cache
        if not cache.enabled:
            ctx.accuracy_report = compute()
            return
        # Every active perf mode is part of the key: the loop and batched
        # forwards agree to ~1e-9 (not bit-for-bit), philox streams differ
        # from the SeedSequence contract by construction, and float32 studies
        # round differently -- so an A/B comparison within one process must
        # never serve one mode's memoized study to another.  nominal_snr is in
        # the key because compute() reads it: two contexts with identical
        # request/bits/link but different SNR reports (e.g. divergent receiver
        # sweeps sharing one cache) must not serve each other's studies.
        key = fingerprint(
            request.fingerprint(),
            bits,
            link,
            nominal_snr,
            forward_mode(),
            rng_mode(),
            dtype_mode(),
        )
        ctx.accuracy_report = cache.get_or_compute(self.name, key, compute)


class AreaPass(EnginePass):
    """Per-architecture area, with the node floorplan memoized across the sweep."""

    name = "area"

    def run(self, ctx: EvaluationContext) -> None:
        for arch in ctx.distinct_archs():
            if arch.name not in ctx.area_reports:
                ctx.area_reports[arch.name] = self._analyze(arch, ctx.memory_report)

    def _analyze(self, arch: Architecture, memory_report: Optional[MemoryReport]) -> AreaReport:
        engine = self.engine
        if not engine.cache.enabled:
            return engine.area_analyzer.analyze(arch, memory_report=memory_report)
        # The breakdown itself is cheap arithmetic over the (parameter-dependent)
        # instance counts; only the node floorplan is worth memoizing.
        return engine.area_analyzer.analyze(
            arch, memory_report=memory_report, node_areas=self._node_areas(arch)
        )

    def _node_areas(self, arch: Architecture) -> Optional[Tuple[float, float]]:
        """Memoized (floorplanned, naive) per-node areas for composite blocks.

        Keyed by the node netlist plus the *geometry* of exactly the devices it
        instantiates -- the floorplan reads nothing else from the library.
        """
        engine = self.engine
        if arch.node_netlist is None:
            return None
        geometry = tuple(
            (inst.device,
             arch.library.get(inst.device).spec.width_um,
             arch.library.get(inst.device).spec.height_um)
            for inst in arch.node_netlist.instances.values()
        )
        key = (
            netlist_fingerprint(arch.node_netlist),
            geometry,
            engine.config.use_layout_aware_area,
            arch.node_device_spacing_um,
            arch.node_boundary_um,
        )
        return engine.cache.get_or_compute(
            "floorplan",
            key,
            lambda: engine.area_analyzer.node_areas(
                arch, layout_aware=engine.config.use_layout_aware_area
            ),
        )


class LayerAnalysisPass(EnginePass):
    """Latency and data-aware energy for every mapped layer."""

    name = "layer_analysis"

    def run(self, ctx: EvaluationContext) -> None:
        engine = self.engine
        hierarchy = ctx.memory_report.hierarchy if ctx.memory_report is not None else None
        for gemm, arch, mapping in ctx.mappings:
            latency = engine.latency_analyzer.analyze(mapping, hierarchy)
            if engine.config.include_memory and hierarchy is not None:
                layer_memory_pj = sum(
                    hierarchy.access_energy_pj(level, bits)
                    for level, bits in mapping.traffic_bits.items()
                    if bits > 0
                )
            else:
                layer_memory_pj = 0.0
            energy = self._energy(
                arch, mapping, ctx.link_budgets.get(arch.name), layer_memory_pj,
                ctx.memory_leakage_mw,
            )
            ctx.layers.append(
                LayerResult(
                    workload=gemm,
                    arch_name=arch.name,
                    mapping=mapping,
                    latency=latency,
                    energy=energy,
                )
            )

    def _energy(
        self,
        arch: Architecture,
        mapping: Mapping,
        link_budget: Optional[LinkBudgetReport],
        memory_energy_pj: float,
        memory_static_power_mw: float,
    ) -> EnergyReport:
        # The per-instance accumulation is cheap arithmetic; the expensive
        # data-aware sub-computations (operand sampling, response averages,
        # sparsity) are memoized inside the analyzer itself.
        return self.engine.energy_analyzer.analyze(
            arch,
            mapping,
            link_budget=link_budget,
            memory_energy_pj=memory_energy_pj,
            memory_static_power_mw=memory_static_power_mw,
        )


class AggregatePass(EnginePass):
    """Assemble the SimulationResult from the context."""

    name = "aggregate"

    def run(self, ctx: EvaluationContext) -> None:
        ctx.result = SimulationResult(
            layers=ctx.layers,
            area_reports=ctx.area_reports,
            link_budgets=ctx.link_budgets,
            memory=ctx.memory_report,
            config=self.engine.config,
        )


# -- pass observation hook ------------------------------------------------------------

#: Registered observer entries, swapped atomically as a tuple under the lock so
#: concurrent registration from worker threads never corrupts the sequence and
#: engine runs iterate a consistent snapshot without holding the lock.
_OBSERVER_LOCK = threading.Lock()
_PASS_OBSERVERS: Tuple["_ObserverEntry", ...] = ()


class _ObserverEntry:
    """One registration of a pass observer (unique even for a reused callback).

    Registration is stacked and re-entrant: the same callback may be registered
    multiple times (each ``with`` block removes exactly its own entry), and
    nested orchestration layers -- a batch runner inside an observed test, an
    explorer inside a batch scenario -- each see every pass and apply their own
    filtering (typically by engine-cache identity) to count only their work.
    """

    __slots__ = ("callback", "wants_timing")

    def __init__(self, callback: Callable[..., None]) -> None:
        self.callback = callback
        self.wants_timing = _accepts_timing(callback)

    def notify(self, stage: str, engine: "EvaluationEngine", elapsed_s: float) -> None:
        if self.wants_timing:
            self.callback(stage, engine, elapsed_s)
        else:
            self.callback(stage, engine)


def _accepts_timing(callback: Callable[..., None]) -> bool:
    """Whether ``callback`` takes a third ``elapsed_s`` positional argument.

    Observers predating the per-pass timing telemetry take ``(stage, engine)``;
    newer ones take ``(stage, engine, elapsed_s)``.  Unintrospectable callables
    get the legacy two-argument form.
    """
    import inspect

    try:
        signature = inspect.signature(callback)
    except (TypeError, ValueError):
        return False
    positional = 0
    for param in signature.parameters.values():
        if param.kind in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD):
            positional += 1
        elif param.kind == param.VAR_POSITIONAL:
            return True
    return positional >= 3


@contextlib.contextmanager
def observe_passes(callback: Callable[..., None]):
    """Register ``callback`` for the duration of the ``with`` block.

    The callback fires after each pass of *every* engine run in the process
    (including engines created inside the block) as ``callback(pass_name,
    engine)`` or -- when it accepts a third argument -- ``callback(pass_name,
    engine, elapsed_s)`` with the pass's wall-clock seconds.  Registration is
    scoped, stacked and thread-safe; concurrent observers each receive every
    event and are expected to filter for the engines they care about (e.g. by
    ``engine.cache`` identity) rather than assume exclusive ownership.
    """
    global _PASS_OBSERVERS
    entry = _ObserverEntry(callback)
    with _OBSERVER_LOCK:
        _PASS_OBSERVERS = _PASS_OBSERVERS + (entry,)
    try:
        yield callback
    finally:
        with _OBSERVER_LOCK:
            observers = list(_PASS_OBSERVERS)
            observers.remove(entry)
            _PASS_OBSERVERS = tuple(observers)


# -- the engine -----------------------------------------------------------------------


class EvaluationEngine:
    """Drives the staged pipeline over a (heterogeneous) system.

    Parameters mirror the classic ``Simulator``; additionally ``cache`` supplies
    the shared memoization store (pass an :class:`EvaluationCache` to share one
    across many engines, e.g. all design points of a sweep; the default is a
    fresh enabled cache private to this engine), and ``passes`` may replace the
    default pipeline with a custom sequence of :class:`EnginePass` factories.
    """

    DEFAULT_PASSES = (
        RoutePass,
        MapPass,
        MemoryPass,
        LinkBudgetPass,
        AreaPass,
        LayerAnalysisPass,
        AggregatePass,
    )

    def __init__(
        self,
        system: Union[Architecture, HeterogeneousArchitecture],
        config: Optional[SimulationConfig] = None,
        type_rules: Optional[Dict[str, str]] = None,
        default_subarch: Optional[str] = None,
        cache: Optional[EvaluationCache] = None,
        passes: Optional[Sequence[Callable[["EvaluationEngine"], EnginePass]]] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        if isinstance(system, Architecture):
            self.system = HeterogeneousArchitecture(
                name=system.name, subarchs={system.name: system}
            )
            self.single_arch: Optional[Architecture] = system
        else:
            if len(system) == 0:
                raise ValueError("heterogeneous system has no sub-architectures")
            self.system = system
            self.single_arch = None
        self.type_rules = type_rules or {}
        self.default_subarch = default_subarch
        self.cache = cache if cache is not None else EvaluationCache()
        self.mapper = DataflowMapper(cache=self.cache)
        self.latency_analyzer = LatencyAnalyzer()
        self.energy_analyzer = EnergyAnalyzer(self.config, cache=self.cache)
        self.area_analyzer = AreaAnalyzer(self.config)
        self.link_budget_analyzer = LinkBudgetAnalyzer()
        self.memory_analyzer = MemoryAnalyzer(self.config)
        self.snr_analyzer = SNRAnalyzer()
        self.passes: List[EnginePass] = [
            factory(self) for factory in (passes or self.DEFAULT_PASSES)
        ]
        self._accuracy_pipeline: Optional[List[EnginePass]] = None

    # -- workload normalization ---------------------------------------------------------
    @staticmethod
    def normalize_workloads(
        workloads: Union[WorkloadLike, Sequence[WorkloadLike]],
    ) -> List[WorkloadLike]:
        if isinstance(workloads, (GEMMWorkload, LayerWorkload)):
            return [workloads]
        items = list(workloads)
        if not items:
            raise ValueError("no workloads to simulate")
        return items

    # -- main entry points --------------------------------------------------------------
    def context_for(
        self,
        workloads: Union[WorkloadLike, Sequence[WorkloadLike]],
        single_arch: Optional[Architecture] = None,
    ) -> EvaluationContext:
        if single_arch is not None:
            system = HeterogeneousArchitecture(
                name=single_arch.name, subarchs={single_arch.name: single_arch}
            )
        else:
            system = self.system
            single_arch = self.single_arch
        return EvaluationContext(
            system=system,
            config=self.config,
            workloads=self.normalize_workloads(workloads),
            single_arch=single_arch,
            type_rules=self.type_rules,
            default_subarch=self.default_subarch,
        )

    # -- memoized per-architecture analyses (shared by several passes) ------------------
    def link_budget_for(self, arch: Architecture) -> LinkBudgetReport:
        """The architecture's link budget, with critical path and optics memoized."""
        analyzer = self.link_budget_analyzer
        cache = self.cache
        if not cache.enabled:
            return analyzer.analyze(arch)
        optics = cache.get_or_compute(
            "optics_profile",
            structure_token(arch),
            lambda: analyzer.optics_profile(arch),
        )
        return analyzer.analyze(
            arch, critical_path=self._critical_path_for(arch), optics=optics
        )

    def _critical_path_for(self, arch: Architecture) -> CriticalPath:
        cache = self.cache
        netlist = arch.link_netlist
        multipliers = arch.loss_multipliers()
        loss_items = tuple(
            (
                name,
                arch.library.get(inst.device).insertion_loss_db,
                multipliers.get(name, 1.0),
            )
            for name, inst in netlist.instances.items()
        )
        key = (netlist_fingerprint(netlist), loss_items)

        def compute() -> CriticalPath:
            if cache.enabled:
                chain = _chain_order(netlist)
                if chain is not None:
                    losses = {name: loss * mult for name, loss, mult in loss_items}
                    total = losses[chain[0]]
                    # Same accumulation order (and tie-breaking epsilon) as the
                    # weighted DAG longest path over a linear chain.
                    edge_sum = 0.0
                    for dst in chain[1:]:
                        edge_sum += losses[dst] + 1e-9
                    return CriticalPath(
                        instances=tuple(chain),
                        insertion_loss_db=float(edge_sum + total),
                    )
            return arch.critical_path()

        # The key is the exact projection critical_path() is a function of
        # (netlist topology + per-instance losses), not the arch object itself.
        return cache.get_or_compute("critical_path", key, compute)  # repro-lint: ignore[R002]

    def _execute(
        self,
        ctx: EvaluationContext,
        passes: Optional[Sequence[EnginePass]] = None,
    ) -> EvaluationContext:
        for stage in passes if passes is not None else self.passes:
            observers = _PASS_OBSERVERS  # atomic tuple snapshot, re-read per stage
            if observers:
                start = time.perf_counter()
                stage.run(ctx)
                elapsed = time.perf_counter() - start
                for entry in observers:
                    entry.notify(stage.name, self, elapsed)
            else:
                stage.run(ctx)
        return ctx

    def run(self, workloads: Union[WorkloadLike, Sequence[WorkloadLike]]) -> SimulationResult:
        """Run the full pass pipeline and return the aggregated result."""
        ctx = self._execute(self.context_for(workloads))
        if ctx.result is None:
            raise RuntimeError(
                "pipeline finished without an aggregate pass; "
                "append AggregatePass (or read the context directly via run_context)"
            )
        return ctx.result

    def run_context(
        self, workloads: Union[WorkloadLike, Sequence[WorkloadLike]]
    ) -> EvaluationContext:
        """Like :meth:`run` but returns the full pass context (no aggregate required)."""
        return self._execute(self.context_for(workloads))

    def run_accuracy(self, request, arch: Optional[Architecture] = None):
        """Monte Carlo inference accuracy of ``request`` on ``arch``.

        Runs the variation-aware accuracy pipeline -- ``receiver_precision``
        (link budget -> SNR -> effective resolvable bits) followed by
        ``mc_accuracy`` (the Monte Carlo study itself) -- against this engine's
        shared cache, so unchanged (architecture, noise-spec, workload) triples
        are pure cache hits.  ``request`` is a
        :class:`~repro.variation.montecarlo.AccuracyRequest`; ``arch`` defaults
        to the engine's single architecture.  Returns the
        :class:`~repro.variation.accuracy.AccuracyReport`.
        """
        target = arch if arch is not None else self.single_arch
        if target is None:
            raise ValueError(
                "accuracy evaluation needs a single target architecture; pass "
                "arch= explicitly for heterogeneous systems"
            )
        system = HeterogeneousArchitecture(
            name=target.name, subarchs={target.name: target}
        )
        ctx = EvaluationContext(
            system=system,
            config=self.config,
            workloads=[],
            single_arch=target,
        )
        ctx.accuracy_request = request
        if self._accuracy_pipeline is None:
            self._accuracy_pipeline = [
                ReceiverPrecisionPass(self),
                MonteCarloAccuracyPass(self),
            ]
        self._execute(ctx, passes=self._accuracy_pipeline)
        return ctx.accuracy_report

    def run_for(
        self,
        arch: Architecture,
        workloads: Union[WorkloadLike, Sequence[WorkloadLike]],
    ) -> SimulationResult:
        """Run the pipeline for a different single architecture, reusing this
        engine's analyzers, passes and cache.

        The per-point workhorse of the design-space explorer: the architecture
        travels through the (thread-safe) pass context, so one engine serves
        every grid point -- concurrently, under a parallel executor -- without
        re-constructing the analyzer set each time.
        """
        ctx = self._execute(self.context_for(workloads, single_arch=arch))
        if ctx.result is None:
            raise RuntimeError("pipeline finished without an aggregate pass")
        return ctx.result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvaluationEngine(system={self.system.name!r}, "
            f"passes={[p.name for p in self.passes]}, cache={self.cache!r})"
        )
