"""The SimPhony-Sim top-level simulator.

``Simulator`` ties the layers together: it accepts an architecture (or a
heterogeneous system of sub-architectures sharing one memory hierarchy) and a
workload (single GEMM, a list of GEMMs, or the layer workloads extracted from an ONN
model), and produces a :class:`SimulationResult` with per-layer mappings, latency,
data-aware energy, link budget, bandwidth-adapted memory and layout-aware area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.arch.architecture import Architecture, HeterogeneousArchitecture
from repro.core.area import AreaAnalyzer, AreaReport
from repro.core.config import SimulationConfig
from repro.core.energy import EnergyAnalyzer, EnergyReport
from repro.core.latency import LatencyAnalyzer, LatencyReport
from repro.core.link_budget import LinkBudgetAnalyzer, LinkBudgetReport
from repro.core.memory_analyzer import MemoryAnalyzer, MemoryReport
from repro.core.report import merge_breakdowns, render_breakdown
from repro.dataflow.gemm import GEMMWorkload
from repro.dataflow.mapping import DataflowMapper, Mapping
from repro.dataflow.scheduler import HeterogeneousMapper
from repro.memory.hierarchy import MemoryLevel
from repro.onn.workload import LayerWorkload

WorkloadLike = Union[GEMMWorkload, LayerWorkload]


@dataclass
class LayerResult:
    """Per-layer simulation outcome."""

    workload: GEMMWorkload
    arch_name: str
    mapping: Mapping
    latency: LatencyReport
    energy: EnergyReport

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def total_cycles(self) -> int:
        return self.latency.total_cycles

    @property
    def total_energy_pj(self) -> float:
        return self.energy.total_pj


@dataclass
class SimulationResult:
    """Aggregated result of simulating a workload set on an (heterogeneous) system."""

    layers: List[LayerResult] = field(default_factory=list)
    area_reports: Dict[str, AreaReport] = field(default_factory=dict)
    link_budgets: Dict[str, LinkBudgetReport] = field(default_factory=dict)
    memory: Optional[MemoryReport] = None
    config: SimulationConfig = field(default_factory=SimulationConfig)

    # -- latency -----------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return sum(layer.latency.total_cycles for layer in self.layers)

    @property
    def total_time_ns(self) -> float:
        return sum(layer.latency.total_time_ns for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.workload.num_macs for layer in self.layers)

    @property
    def effective_tops(self) -> float:
        if self.total_time_ns <= 0:
            return 0.0
        return 2.0 * self.total_macs / self.total_time_ns / 1e3

    # -- energy / power -----------------------------------------------------------
    @property
    def energy_breakdown_pj(self) -> Dict[str, float]:
        return merge_breakdowns(layer.energy.breakdown_pj for layer in self.layers)

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())

    @property
    def total_energy_uj(self) -> float:
        return self.total_energy_pj / 1e6

    @property
    def average_power_mw(self) -> Dict[str, float]:
        time_ns = self.total_time_ns
        if time_ns <= 0:
            return {}
        return {key: value / time_ns for key, value in self.energy_breakdown_pj.items()}

    @property
    def total_power_w(self) -> float:
        return sum(self.average_power_mw.values()) / 1e3

    @property
    def energy_per_mac_pj(self) -> float:
        macs = self.total_macs
        return self.total_energy_pj / macs if macs else 0.0

    # -- area ---------------------------------------------------------------------
    @property
    def area_breakdown_mm2(self) -> Dict[str, float]:
        merged = merge_breakdowns(
            {k: v for k, v in report.breakdown_mm2.items() if k != "Mem"}
            for report in self.area_reports.values()
        )
        if self.memory is not None and self.config.include_memory:
            merged["Mem"] = self.memory.onchip_area_mm2
        return merged

    @property
    def total_area_mm2(self) -> float:
        return sum(self.area_breakdown_mm2.values())

    # -- per-layer / per-arch views ----------------------------------------------------
    def layers_on(self, arch_name: str) -> List[LayerResult]:
        return [layer for layer in self.layers if layer.arch_name == arch_name]

    def layer(self, name: str) -> LayerResult:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no simulated layer named {name!r}")

    def energy_by_arch(self) -> Dict[str, float]:
        by_arch: Dict[str, float] = {}
        for layer in self.layers:
            by_arch[layer.arch_name] = by_arch.get(layer.arch_name, 0.0) + layer.total_energy_pj
        return by_arch

    # -- rendering ------------------------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"layers simulated    : {len(self.layers)}",
            f"total MACs          : {self.total_macs}",
            f"total cycles        : {self.total_cycles}",
            f"total time          : {self.total_time_ns:.1f} ns",
            f"total energy        : {self.total_energy_uj:.4f} uJ",
            f"average power       : {self.total_power_w:.3f} W",
            f"energy per MAC      : {self.energy_per_mac_pj:.3f} pJ",
            f"total area          : {self.total_area_mm2:.3f} mm2",
            "",
            "energy breakdown (pJ):",
            render_breakdown(self.energy_breakdown_pj, unit="pJ"),
            "",
            "area breakdown (mm2):",
            render_breakdown(self.area_breakdown_mm2, unit="mm2"),
        ]
        return "\n".join(lines)


class Simulator:
    """End-to-end EPIC AI system simulator."""

    def __init__(
        self,
        system: Union[Architecture, HeterogeneousArchitecture],
        config: Optional[SimulationConfig] = None,
        type_rules: Optional[Dict[str, str]] = None,
        default_subarch: Optional[str] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        if isinstance(system, Architecture):
            self.system = HeterogeneousArchitecture(name=system.name, subarchs={system.name: system})
            self._single_arch: Optional[Architecture] = system
        else:
            if len(system) == 0:
                raise ValueError("heterogeneous system has no sub-architectures")
            self.system = system
            self._single_arch = None
        self.type_rules = type_rules or {}
        self.default_subarch = default_subarch
        self.mapper = DataflowMapper()
        self.latency_analyzer = LatencyAnalyzer()
        self.energy_analyzer = EnergyAnalyzer(self.config)
        self.area_analyzer = AreaAnalyzer(self.config)
        self.link_budget_analyzer = LinkBudgetAnalyzer()
        self.memory_analyzer = MemoryAnalyzer(self.config)

    # -- workload normalization / routing ------------------------------------------------
    def _normalize(self, workloads: Union[WorkloadLike, Sequence[WorkloadLike]]) -> List[WorkloadLike]:
        if isinstance(workloads, (GEMMWorkload, LayerWorkload)):
            return [workloads]
        items = list(workloads)
        if not items:
            raise ValueError("no workloads to simulate")
        return items

    def _route(self, workloads: List[WorkloadLike]) -> List[tuple]:
        """Return (gemm, architecture) pairs for every workload."""
        if self._single_arch is not None:
            arch = self._single_arch
            return [
                (w.gemm if isinstance(w, LayerWorkload) else w, arch) for w in workloads
            ]
        layer_workloads = [
            w if isinstance(w, LayerWorkload) else LayerWorkload(
                gemm=w, layer_name=w.name, layer_type=w.layer_type
            )
            for w in workloads
        ]
        het_mapper = HeterogeneousMapper(
            self.system, type_rules=self.type_rules, default_subarch=self.default_subarch
        )
        return [(a.workload.gemm, a.arch) for a in het_mapper.assign(layer_workloads)]

    # -- main entry point --------------------------------------------------------------------
    def run(self, workloads: Union[WorkloadLike, Sequence[WorkloadLike]]) -> SimulationResult:
        routed = self._route(self._normalize(workloads))

        # Map every workload on its architecture.
        mappings: List[tuple] = []
        for gemm, arch in routed:
            mappings.append((gemm, arch, self.mapper.map(gemm, arch)))

        # Shared, bandwidth-adapted memory hierarchy across the whole workload set.
        all_mappings = [m for _, _, m in mappings]
        reference_arch = mappings[0][1]
        memory_report = self.memory_analyzer.analyze(all_mappings, reference_arch)
        hierarchy = memory_report.hierarchy
        memory_leakage_mw = (
            memory_report.onchip_leakage_mw if self.config.include_memory else 0.0
        )

        # Link budgets and area, once per distinct sub-architecture.
        link_budgets: Dict[str, LinkBudgetReport] = {}
        area_reports: Dict[str, AreaReport] = {}
        for _, arch, _ in mappings:
            if arch.name not in link_budgets:
                link_budgets[arch.name] = self.link_budget_analyzer.analyze(arch)
                area_reports[arch.name] = self.area_analyzer.analyze(
                    arch, memory_report=memory_report
                )

        layers: List[LayerResult] = []
        for gemm, arch, mapping in mappings:
            latency = self.latency_analyzer.analyze(mapping, hierarchy)
            layer_memory_pj = sum(
                hierarchy.access_energy_pj(level, bits)
                for level, bits in mapping.traffic_bits.items()
                if bits > 0
            ) if self.config.include_memory else 0.0
            energy = self.energy_analyzer.analyze(
                arch,
                mapping,
                link_budget=link_budgets[arch.name],
                memory_energy_pj=layer_memory_pj,
                memory_static_power_mw=memory_leakage_mw,
            )
            layers.append(
                LayerResult(
                    workload=gemm,
                    arch_name=arch.name,
                    mapping=mapping,
                    latency=latency,
                    energy=energy,
                )
            )

        return SimulationResult(
            layers=layers,
            area_reports=area_reports,
            link_budgets=link_budgets,
            memory=memory_report,
            config=self.config,
        )

    # -- conveniences ---------------------------------------------------------------------------
    def run_gemm(
        self,
        m: int,
        k: int,
        n: int,
        name: str = "gemm",
        **workload_kwargs,
    ) -> SimulationResult:
        """Simulate a single GEMM given only its dimensions."""
        arch = self._single_arch or next(iter(self.system.subarchs.values()))
        workload = GEMMWorkload(
            name=name,
            m=m,
            n=n,
            k=k,
            input_bits=workload_kwargs.pop("input_bits", arch.config.input_bits),
            weight_bits=workload_kwargs.pop("weight_bits", arch.config.weight_bits),
            output_bits=workload_kwargs.pop("output_bits", arch.config.output_bits),
            **workload_kwargs,
        )
        return self.run(workload)
