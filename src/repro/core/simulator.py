"""The SimPhony-Sim top-level simulator (compatibility facade).

``Simulator`` keeps the seed's one-call API -- accept an architecture (or a
heterogeneous system), accept a workload set, return a
:class:`~repro.core.engine.SimulationResult` -- but the actual work now runs in the
staged :class:`~repro.core.engine.EvaluationEngine` pipeline
(route -> map -> memory -> link-budget/area -> latency/energy -> aggregate).

By default the facade runs the engine with memoization *disabled*, which executes
every pass exactly as the seed simulator did.  Pass an
:class:`~repro.core.cache.EvaluationCache` to opt into cross-run memoization
(results are bit-identical; workloads are then treated as immutable between runs).
The result record classes are defined in :mod:`repro.core.engine` and re-exported
here so existing ``from repro.core.simulator import SimulationResult`` imports keep
working.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.arch.architecture import Architecture, HeterogeneousArchitecture
from repro.core.cache import EvaluationCache
from repro.core.config import SimulationConfig
from repro.core.engine import (  # noqa: F401  (re-exported for compatibility)
    EvaluationEngine,
    LayerResult,
    SimulationResult,
    WorkloadLike,
)
from repro.dataflow.gemm import GEMMWorkload


class Simulator:
    """End-to-end EPIC AI system simulator: a thin facade over the engine."""

    def __init__(
        self,
        system: Union[Architecture, HeterogeneousArchitecture],
        config: Optional[SimulationConfig] = None,
        type_rules: Optional[Dict[str, str]] = None,
        default_subarch: Optional[str] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        self.engine = EvaluationEngine(
            system,
            config,
            type_rules=type_rules,
            default_subarch=default_subarch,
            cache=cache if cache is not None else EvaluationCache(enabled=False),
        )
        # Mirrored attributes kept for API compatibility with the seed simulator.
        self.config = self.engine.config
        self.system = self.engine.system
        self.type_rules = self.engine.type_rules
        self.default_subarch = self.engine.default_subarch
        self._single_arch = self.engine.single_arch

    @property
    def cache(self) -> EvaluationCache:
        return self.engine.cache

    # -- main entry point --------------------------------------------------------------------
    def run(self, workloads: Union[WorkloadLike, Sequence[WorkloadLike]]) -> SimulationResult:
        return self.engine.run(workloads)

    # -- conveniences ---------------------------------------------------------------------------
    def run_gemm(
        self,
        m: int,
        k: int,
        n: int,
        name: str = "gemm",
        **workload_kwargs,
    ) -> SimulationResult:
        """Simulate a single GEMM given only its dimensions."""
        arch = self._single_arch or next(iter(self.system.subarchs.values()))
        workload = GEMMWorkload(
            name=name,
            m=m,
            n=n,
            k=k,
            input_bits=workload_kwargs.pop("input_bits", arch.config.input_bits),
            weight_bits=workload_kwargs.pop("weight_bits", arch.config.weight_bits),
            output_bits=workload_kwargs.pop("output_bits", arch.config.output_bits),
            **workload_kwargs,
        )
        return self.run(workload)
