"""Central registry of every ``REPRO_*`` environment knob.

Environment knobs are the repo's third implicit contract surface (next to
bit-identical backends and fingerprint-complete memoization): a knob that
changes numerics but is read ad hoc from ``os.environ`` can silently skew a
process or cluster worker whose shell exports a different value than the
coordinator that encoded the task.  PR 7 fixed exactly that bug class for
``REPRO_FORWARD``/``REPRO_DTYPE``; this module makes the fix structural.

Every knob is declared **here, once**, as a :class:`Knob` record (name, type,
default, choices, whether it affects numerics), and every runtime read of a
``REPRO_*`` variable goes through :func:`raw_value`/:func:`value` -- the only
sanctioned ``os.environ`` access points for the prefix.  Two properties follow
by construction:

- :func:`repro_env_snapshot` (what ``ships_tasks`` backends pin into task
  encodings so workers replay the coordinator's environment) is derived from
  the registry, not from a hand-maintained list -- a newly registered knob can
  never be forgotten from the snapshot;
- the ``repro lint`` static-analysis rule **R003** can cross-check the code
  against the registry: raw ``os.environ["REPRO_..."]`` reads outside this
  module and unregistered ``REPRO_*`` literals are build failures.

The module depends on nothing inside ``repro`` so any layer (device models up
to the CLI) can import it without cycles.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

#: Every environment knob the repro engine reads shares this prefix;
#: task-shipping backends snapshot the whole prefix so worker behaviour is a
#: function of the task encoding, not of the worker's inherited shell.
REPRO_ENV_PREFIX = "REPRO_"

#: Declared knob value types and their coercions from the raw string.
_KNOB_TYPES: Dict[str, Any] = {"str": str, "int": int, "float": float}


@dataclass(frozen=True)
class Knob:
    """One declared ``REPRO_*`` environment knob.

    ``affects_numerics`` marks knobs whose value can change computed results
    (modes, seeds, trial counts) as opposed to pure execution shape (worker
    counts, endpoints, store paths).  Numeric knobs MUST reach workers through
    the task-encoding snapshot; :func:`repro_env_snapshot` guarantees that by
    deriving from this registry.
    """

    name: str
    type: str = "str"
    default: Optional[str] = None
    choices: Optional[Tuple[str, ...]] = None
    affects_numerics: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name.startswith(REPRO_ENV_PREFIX):
            raise ValueError(
                f"knob names must start with {REPRO_ENV_PREFIX!r}, got {self.name!r}"
            )
        if self.type not in _KNOB_TYPES:
            raise ValueError(
                f"knob {self.name}: type must be one of {sorted(_KNOB_TYPES)}, "
                f"got {self.type!r}"
            )
        if self.choices is not None and self.default is not None:
            if self.default not in self.choices:
                raise ValueError(
                    f"knob {self.name}: default {self.default!r} not in "
                    f"choices {self.choices}"
                )

    def coerce(self, raw: str) -> Any:
        """``raw`` as this knob's declared type (choices validated for str knobs)."""
        try:
            value = _KNOB_TYPES[self.type](raw)
        except ValueError:
            raise ValueError(
                f"{self.name} must parse as {self.type}, got {raw!r}"
            ) from None
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"{self.name} must be one of {', '.join(self.choices)}, got {value!r}"
            )
        return value


_REGISTRY_LOCK = threading.Lock()
_REGISTRY: Dict[str, Knob] = {}


def register(
    name: str,
    *,
    type: str = "str",
    default: Optional[str] = None,
    choices: Optional[Tuple[str, ...]] = None,
    affects_numerics: bool = False,
    description: str = "",
) -> Knob:
    """Declare a knob.  Idempotent for identical declarations; conflicts raise."""
    knob = Knob(
        name=name,
        type=type,
        default=default,
        choices=choices,
        affects_numerics=affects_numerics,
        description=description,
    )
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None and existing != knob:
            raise ValueError(
                f"knob {name} already registered with a different declaration"
            )
        _REGISTRY[name] = knob
    return knob


def get(name: str) -> Knob:
    """The declared knob, or an actionable ``KeyError`` naming the registry."""
    with _REGISTRY_LOCK:
        knob = _REGISTRY.get(name)
    if knob is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown knob {name!r}; registered knobs: {known} "
            "(declare new knobs in repro/core/knobs.py)"
        )
    return knob


def is_registered(name: str) -> bool:
    with _REGISTRY_LOCK:
        return name in _REGISTRY


def all_knobs() -> Tuple[Knob, ...]:
    """Every declared knob, sorted by name (a stable, documentation-ready view)."""
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def knob_names() -> Tuple[str, ...]:
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def numeric_knob_names() -> Tuple[str, ...]:
    """Names of every knob whose value can change computed results."""
    return tuple(knob.name for knob in all_knobs() if knob.affects_numerics)


def raw_value(name: str) -> Optional[str]:
    """The raw environment string of a registered knob (``None`` when unset).

    This function (with :func:`value` and :func:`repro_env_snapshot`) is the
    only sanctioned ``os.environ`` read path for ``REPRO_*`` variables --
    lint rule R003 flags reads anywhere else.
    """
    return os.environ.get(get(name).name)


def value(name: str) -> Any:
    """The knob's effective typed value: environment, else declared default."""
    knob = get(name)
    raw = os.environ.get(knob.name)
    if raw is None:
        raw = knob.default
    if raw is None:
        return None
    return knob.coerce(raw)


@contextlib.contextmanager
def forced_env(name: str, forced: Optional[str]) -> Iterator[None]:
    """Pin a registered knob in the environment for the block (None = no-op).

    The previous value (or absence) is restored on exit.  Used by benchmarks
    and tests to flip modes without leaking state into later code.
    """
    if forced is None:
        yield
        return
    knob = get(name)
    previous = os.environ.get(knob.name)
    os.environ[knob.name] = forced
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(knob.name, None)
        else:
            os.environ[knob.name] = previous


def repro_env_snapshot() -> Dict[str, str]:
    """The ``REPRO_*`` environment to pin into task encodings, registry-derived.

    Every *registered* knob that is set contributes its entry -- so a numerics
    knob can never be forgotten from the snapshot -- and any unregistered
    ``REPRO_*`` variable is still captured as a safety net (lint rule R003
    reports it as a registry gap rather than letting it skew workers).
    """
    snapshot = {
        knob.name: raw
        for knob in all_knobs()
        if (raw := os.environ.get(knob.name)) is not None
    }
    for key, raw in os.environ.items():
        if key.startswith(REPRO_ENV_PREFIX) and key not in snapshot:
            snapshot[key] = raw
    return snapshot


# -- the declarations ------------------------------------------------------------------
# One block, one source of truth.  Scenario parameter overrides (resolved by
# ScenarioSpec.resolve_params in the coordinating process, before any task is
# encoded) are registered alongside the engine mode knobs so the R003 registry
# cross-check covers every REPRO_* literal in the package.

register(
    "REPRO_FORWARD",
    default="vectorized",
    choices=("vectorized", "loop"),
    affects_numerics=True,
    description="Forward implementation: vectorized (default) or the legacy "
    "loop reference path.",
)
register(
    "REPRO_DTYPE",
    default="float64",
    choices=("float64", "float32"),
    affects_numerics=True,
    description="Trial-batched compute precision; float32 is the opt-in "
    "throughput mode.",
)
register(
    "REPRO_RNG",
    default="seedseq",
    choices=("seedseq", "philox"),
    affects_numerics=True,
    description="Monte Carlo trial RNG derivation: the bit-exact SeedSequence "
    "contract or counter-based Philox throughput mode.",
)
register(
    "REPRO_MC_TRIALS",
    type="int",
    affects_numerics=True,
    description="Override the Monte Carlo trial count of variation scenarios.",
)
register(
    "REPRO_MC_BACKEND",
    description="Execution backend for Monte Carlo trials (results are "
    "backend-invariant by construction).",
)
register(
    "REPRO_MC_JOBS",
    type="int",
    description="Worker count for the Monte Carlo execution backend.",
)
register(
    "REPRO_STORE",
    description="Result-store directory for the repro CLI and batch runner.",
)
register(
    "REPRO_POOL",
    default="cold",
    choices=("warm", "cold"),
    description="Process-pool lifecycle: cold (default) builds and tears down "
    "a pool per session, warm keeps a named reusable pool alive across "
    "dispatches (stop it with `repro pool stop`).",
)
register(
    "REPRO_POOL_IDLE_S",
    type="float",
    default="300",
    description="Seconds a warm process pool may sit idle before it is reaped.",
)
register(
    "REPRO_SHM",
    default="on",
    choices=("on", "off"),
    description="Shared-memory array transport for task-shipping backends: "
    "large arrays are published once per host and task encodings carry "
    "content-addressed handles instead of pickled copies.",
)
register(
    "REPRO_CACHE_MAX_ENTRIES",
    type="int",
    description="LRU entry cap of the evaluation cache (unset = unbounded); "
    "evictions recompute deterministically, so results never change.",
)
register(
    "REPRO_CLUSTER_HOST",
    description="Cluster coordinator bind/connect host (default 127.0.0.1).",
)
register(
    "REPRO_CLUSTER_PORT",
    type="int",
    description="Cluster coordinator port (default 7621; 0 binds ephemeral).",
)
register(
    "REPRO_CLUSTER_WORKERS",
    type="int",
    description="Workers the cluster backend waits for before dispatching.",
)
register(
    "REPRO_CLUSTER_WAIT_S",
    type="float",
    description="Seconds to wait for the cluster worker fleet to assemble.",
)
register(
    "REPRO_BERT_LAYERS",
    type="int",
    affects_numerics=True,
    description="Scenario override: encoder layer count of the BERT workload.",
)
register(
    "REPRO_FIG10B_SEED",
    type="int",
    affects_numerics=True,
    description="Scenario override: workload seed of the Fig. 10b experiment.",
)
register(
    "REPRO_VGG_WIDTH",
    type="float",
    affects_numerics=True,
    description="Scenario override: VGG-8 width multiplier.",
)
register(
    "REPRO_ABLATION_SEED",
    type="int",
    affects_numerics=True,
    description="Scenario override: workload seed of the ablation experiment.",
)
register(
    "REPRO_DSE_BACKEND",
    description="Scenario override: execution backend for DSE sweeps.",
)
register(
    "REPRO_DSE_JOBS",
    type="int",
    description="Scenario override: worker count for DSE sweeps.",
)
register(
    "REPRO_BACKEND_JOBS",
    type="int",
    description="Scenario override: worker count of the backend-scaling bench.",
)
register(
    "REPRO_PRECISION_BITS",
    affects_numerics=True,
    description="Scenario override: precision-bits diagonal of the "
    "accuracy-vs-precision sweep.",
)
register(
    "REPRO_PARETO_BACKEND",
    description="Scenario override: execution backend of the accuracy/energy "
    "Pareto sweep.",
)
register(
    "REPRO_PARETO_JOBS",
    type="int",
    description="Scenario override: worker count of the accuracy/energy "
    "Pareto sweep.",
)
