"""Layout-aware chip area analysis.

Per-component areas come from the architecture's instance counts and device
footprints; composite dot-product nodes are floorplanned with the signal-flow-aware
:class:`~repro.layout.floorplan.SignalFlowFloorplanner` (layout-aware mode) or summed
naively (layout-unaware mode, the underestimate of Fig. 10a).  On-chip memory area
from the CACTI-substitute models is added when a memory report is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.architecture import Architecture
from repro.core.config import SimulationConfig
from repro.core.memory_analyzer import MemoryReport
from repro.core.report import component_label
from repro.layout.floorplan import SignalFlowFloorplanner, naive_footprint_sum_um2


@dataclass
class AreaReport:
    """Chip area breakdown for one architecture."""

    breakdown_um2: Dict[str, float] = field(default_factory=dict)
    node_area_um2: float = 0.0
    node_area_naive_um2: float = 0.0
    memory_area_mm2: float = 0.0
    layout_aware: bool = True

    @property
    def photonic_core_area_mm2(self) -> float:
        """Area of all PTC device groups (excluding memory)."""
        return sum(self.breakdown_um2.values()) / 1e6

    @property
    def total_area_mm2(self) -> float:
        return self.photonic_core_area_mm2 + self.memory_area_mm2

    @property
    def breakdown_mm2(self) -> Dict[str, float]:
        breakdown = {key: value / 1e6 for key, value in self.breakdown_um2.items()}
        if self.memory_area_mm2 > 0:
            breakdown["Mem"] = self.memory_area_mm2
        return breakdown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AreaReport(total={self.total_area_mm2:.3f} mm2, "
            f"layout_aware={self.layout_aware})"
        )


class AreaAnalyzer:
    """Computes per-component and total chip area for an architecture."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()

    def node_areas(self, arch: Architecture, layout_aware: bool) -> tuple:
        """(per-node area used, naive per-node area) in um^2.

        Public so the evaluation engine can memoize the floorplan across a sweep
        (it depends only on the node netlist, device geometry and spacing rules).
        """
        naive = arch.node_footprint_sum_um2()
        if arch.node_netlist is None:
            return naive, naive
        if not layout_aware:
            return naive, naive
        floorplanner = SignalFlowFloorplanner(
            device_spacing_um=arch.node_device_spacing_um,
            boundary_um=arch.node_boundary_um,
        )
        planned = floorplanner.area_um2(arch.node_netlist, arch.library)
        return planned, naive

    # Backwards-compatible alias for the pre-engine private name.
    _node_areas = node_areas

    def analyze(
        self,
        arch: Architecture,
        memory_report: Optional[MemoryReport] = None,
        layout_aware: Optional[bool] = None,
        node_areas: Optional[tuple] = None,
    ) -> AreaReport:
        layout_aware = (
            self.config.use_layout_aware_area if layout_aware is None else layout_aware
        )
        if node_areas is None:
            node_areas = self.node_areas(arch, layout_aware)
        node_area, node_naive = node_areas
        params = arch.params
        breakdown: Dict[str, float] = {}
        for inst in arch.area_instances():
            count = inst.instance_count(params)
            if count == 0:
                continue
            if inst.is_composite:
                unit_area = node_area
            else:
                unit_area = arch.library.get(inst.device).area_um2
            label = component_label(inst)
            breakdown[label] = breakdown.get(label, 0.0) + unit_area * count

        memory_area = 0.0
        if memory_report is not None and self.config.include_memory:
            memory_area = memory_report.onchip_area_mm2

        return AreaReport(
            breakdown_um2=breakdown,
            node_area_um2=node_area,
            node_area_naive_um2=node_naive,
            memory_area_mm2=memory_area,
            layout_aware=layout_aware,
        )

    def naive_total_um2(self, arch: Architecture) -> float:
        """Convenience: the fully layout-unaware total (footprint sums everywhere)."""
        report = self.analyze(arch, memory_report=None, layout_aware=False)
        return sum(report.breakdown_um2.values())

    @staticmethod
    def node_floorplan_gap(arch: Architecture) -> float:
        """Ratio of floorplanned to naive node area (>= 1 when layout matters)."""
        if arch.node_netlist is None:
            return 1.0
        naive = naive_footprint_sum_um2(arch.node_netlist, arch.library)
        if naive <= 0:
            return 1.0
        floorplanner = SignalFlowFloorplanner(
            device_spacing_um=arch.node_device_spacing_um,
            boundary_um=arch.node_boundary_um,
        )
        return floorplanner.area_um2(arch.node_netlist, arch.library) / naive
