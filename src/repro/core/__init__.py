"""SimPhony-Sim: the end-to-end simulation flow and its analyzers.

The :class:`~repro.core.simulator.Simulator` drives the flow of the paper's Fig. 1:
workload extraction -> dataflow mapping -> latency analysis -> link-budget analysis
-> bandwidth-adaptive memory modeling -> data-aware energy analysis -> layout-aware
area analysis, producing a :class:`~repro.core.simulator.SimulationResult` with
per-component breakdowns.
"""

from repro.core.cache import CacheStats, EvaluationCache
from repro.core.config import SimulationConfig
from repro.core.engine import (
    EvaluationContext,
    EvaluationEngine,
    EnginePass,
    rebind_architecture,
    resolve_architecture,
)
from repro.core.simulator import Simulator, SimulationResult, LayerResult
from repro.core.energy import EnergyAnalyzer, EnergyReport
from repro.core.latency import LatencyAnalyzer, LatencyReport
from repro.core.area import AreaAnalyzer, AreaReport
from repro.core.link_budget import LinkBudgetAnalyzer, LinkBudgetReport
from repro.core.memory_analyzer import MemoryAnalyzer, MemoryReport
from repro.core.snr import SNRAnalyzer, SNRReport

__all__ = [
    "CacheStats",
    "EvaluationCache",
    "EvaluationContext",
    "EvaluationEngine",
    "EnginePass",
    "rebind_architecture",
    "resolve_architecture",
    "SNRAnalyzer",
    "SNRReport",
    "SimulationConfig",
    "Simulator",
    "SimulationResult",
    "LayerResult",
    "EnergyAnalyzer",
    "EnergyReport",
    "LatencyAnalyzer",
    "LatencyReport",
    "AreaAnalyzer",
    "AreaReport",
    "LinkBudgetAnalyzer",
    "LinkBudgetReport",
    "MemoryAnalyzer",
    "MemoryReport",
]
