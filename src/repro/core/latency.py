"""Latency analysis: cycle-accurate accounting of one layer on one architecture.

Implements the paper's layer latency model

    tau_total = tau_load(input + weight) + tau_write_out + I * (tau_compute + tau_reconfig)

where ``I`` is the range-restriction forward count, ``tau_compute`` comes from the
dataflow mapping's nested-loop iteration counts, ``tau_reconfig`` from the
stationary-operand reprogramming time, and the load/write terms from streaming the
layer operands through the GLB at its provisioned bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.dataflow.mapping import Mapping
from repro.memory.hierarchy import MemoryHierarchy, MemoryLevel


@dataclass
class LatencyReport:
    """Cycle and wall-clock latency breakdown for one mapped workload."""

    load_cycles: int
    compute_cycles: int
    reconfig_cycles: int
    writeout_cycles: int
    frequency_ghz: float
    num_macs: int

    @property
    def total_cycles(self) -> int:
        return self.load_cycles + self.compute_cycles + self.reconfig_cycles + self.writeout_cycles

    @property
    def total_time_ns(self) -> float:
        return self.total_cycles / self.frequency_ghz

    @property
    def compute_time_ns(self) -> float:
        return self.compute_cycles / self.frequency_ghz

    @property
    def effective_tops(self) -> float:
        """Achieved tera-operations per second (2 ops per MAC)."""
        if self.total_time_ns <= 0:
            return 0.0
        return 2.0 * self.num_macs / self.total_time_ns / 1e3

    @property
    def compute_bound_fraction(self) -> float:
        """Fraction of the total latency spent actually computing."""
        total = self.total_cycles
        return self.compute_cycles / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyReport(total={self.total_cycles} cycles / {self.total_time_ns:.1f} ns, "
            f"compute={self.compute_cycles}, reconfig={self.reconfig_cycles})"
        )


class LatencyAnalyzer:
    """Turns a dataflow mapping (plus the memory hierarchy) into a latency report."""

    def __init__(self, overlap_memory_with_compute: bool = False) -> None:
        #: when True, operand loading is assumed to be double-buffered behind compute
        #: (latency hiding); the paper's baseline model keeps the terms additive.
        self.overlap_memory_with_compute = overlap_memory_with_compute

    def _streaming_cycles(
        self,
        num_bytes: float,
        hierarchy: Optional[MemoryHierarchy],
        frequency_ghz: float,
    ) -> int:
        if num_bytes <= 0 or hierarchy is None:
            return 0
        glb = hierarchy.level(MemoryLevel.GLB)
        bandwidth_bytes_per_ns = glb.bandwidth_bits_per_ns / 8.0
        if bandwidth_bytes_per_ns <= 0:
            return 0
        time_ns = num_bytes / bandwidth_bytes_per_ns
        return int(math.ceil(time_ns * frequency_ghz))

    def analyze(
        self,
        mapping: Mapping,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> LatencyReport:
        workload = mapping.workload
        load_bytes = workload.input_bytes + workload.weight_bytes
        load_cycles = self._streaming_cycles(load_bytes, hierarchy, mapping.frequency_ghz)
        writeout_cycles = self._streaming_cycles(
            workload.output_bytes, hierarchy, mapping.frequency_ghz
        )
        if self.overlap_memory_with_compute:
            # Perfect double buffering: only the portion not hidden behind compute stalls.
            load_cycles = max(0, load_cycles - mapping.compute_cycles)
            writeout_cycles = max(0, writeout_cycles - mapping.compute_cycles)
        return LatencyReport(
            load_cycles=load_cycles,
            compute_cycles=mapping.compute_cycles,
            reconfig_cycles=mapping.reconfig_cycles,
            writeout_cycles=writeout_cycles,
            frequency_ghz=mapping.frequency_ghz,
            num_macs=workload.num_macs,
        )
