"""Canonical hashing and the shared memoization store for the evaluation engine.

The staged :class:`~repro.core.engine.EvaluationEngine` splits a simulation into
passes (route -> map -> memory -> link-budget/area -> latency/energy -> aggregate)
and memoizes each pass on a canonical fingerprint of *exactly the inputs that pass
reads* -- the architecture's symbolic structure, the resolved scaling parameters, the
workload operand data, the :class:`~repro.core.config.SimulationConfig` fields.  A
design-space sweep that varies one parameter therefore only re-runs the passes that
parameter invalidates; everything else is a cache hit.

Pass-level keys are canonical, order-stable tuples (:func:`fingerprint`), which
compare structurally; per-object identities (:func:`digest`) compress the heavy
canonicalization into a SHA-1 string computed once and memoized on the object:

- dataclasses/enums/dicts/sequences are recursively canonicalized with sorted keys;
- numpy arrays hash their shape, dtype and raw bytes (value-exact, no tolerance);
- :class:`~repro.dataflow.gemm.GEMMWorkload` operand tensors are hashed once and the
  digest is memoized on the workload object (workloads are treated as immutable
  once handed to an engine -- mutate a copy, not the original, between runs).

:class:`EvaluationCache` is the store shared by every pass (and by all design points
of an exploration): a thread-safe dict keyed by ``(stage, fingerprint)`` with
per-stage hit/miss accounting, so sweeps can report exactly which passes were
re-used.  Disabling the cache turns every lookup into a plain recompute, restoring
the seed simulator's behaviour bit for bit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, Hashable, Optional, Tuple, TypeVar

import numpy as np

T = TypeVar("T")

_FINGERPRINT_ATTR = "_repro_fingerprint"
_MAX_CANONICAL_DEPTH = 12


def canonical_value(obj: Any, depth: int = 0) -> Any:
    """Render ``obj`` as a deterministic, repr-stable structure for hashing.

    Handles the value types that appear in evaluation-pass inputs: scalars,
    strings, enums, numpy arrays/scalars, dataclasses, mappings and sequences.
    Arbitrary objects fall back to their class name plus sorted ``__dict__``
    (bounded by a recursion depth so cyclic object graphs fail loudly rather
    than hanging).
    """
    kind = type(obj)
    if kind is str or kind is int or kind is float or kind is bool or obj is None:
        # Fast path for the scalars that dominate pass keys.  Raw floats hash
        # and compare structurally (0.0 and -0.0 share a key, which is fine for
        # physical quantities); positions in a key always hold one field, so
        # bool/int hash equality cannot mix semantics.
        return obj
    if depth > _MAX_CANONICAL_DEPTH:
        raise ValueError(f"canonical_value recursion too deep at {type(obj).__name__}")
    if isinstance(obj, (bool, int, float, str, bytes)):
        return obj if not isinstance(obj, float) else obj + 0.0
    if isinstance(obj, Enum):
        return ("enum", type(obj).__name__, obj.value)
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        digest = hashlib.sha1(data.tobytes()).hexdigest()
        return ("ndarray", data.shape, str(data.dtype), digest)
    if isinstance(obj, np.generic):
        return canonical_value(obj.item(), depth + 1)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = (
            (f.name, canonical_value(getattr(obj, f.name), depth + 1))
            for f in dataclasses.fields(obj)
        )
        return (type(obj).__name__, tuple(fields))
    if isinstance(obj, dict):
        items = sorted(
            ((repr(canonical_value(k, depth + 1)), canonical_value(v, depth + 1))
             for k, v in obj.items())
        )
        return ("dict", tuple(items))
    if isinstance(obj, (list, tuple)):
        return tuple(canonical_value(item, depth + 1) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonical_value(i, depth + 1)) for i in obj)))
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        items = sorted(
            (name, canonical_value(value, depth + 1))
            for name, value in attrs.items()
            if not name.startswith("_repro_")
        )
        return (type(obj).__name__, tuple(items))
    return (type(obj).__name__, repr(obj))


def fingerprint(*parts: Any) -> Hashable:
    """Canonical, hashable cache key for ``parts``.

    The key is the canonical rendering itself (a nested tuple of primitives),
    which compares structurally -- collision-free by construction and cheaper
    than digesting a repr.  Large payloads (numpy arrays) are already reduced to
    SHA-1 digests inside :func:`canonical_value`, so keys stay small.
    """
    return tuple(canonical_value(part) for part in parts)


def digest(*parts: Any) -> str:
    """Compact SHA-1 digest of the canonical rendering of ``parts``.

    Used for the memoized *per-object* fingerprints (workloads, libraries,
    architectures): the heavy canonicalization runs once per object, and the
    resulting short string embeds cheaply into the tuple keys of later passes
    without being re-walked on every lookup.
    """
    return hashlib.sha1(repr(fingerprint(*parts)).encode("utf-8")).hexdigest()


def memoized_fingerprint(obj: Any, compute: Callable[[], Hashable]) -> Hashable:
    """Fingerprint ``obj`` once and stash the digest on the object when possible."""
    cached = getattr(obj, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    digest = compute()
    try:
        object.__setattr__(obj, _FINGERPRINT_ATTR, digest)
    except (AttributeError, TypeError):  # __slots__ or exotic objects: recompute later
        pass
    return digest


# -- fingerprints of the domain objects the passes consume --------------------------


def config_fingerprint(config: Any) -> Hashable:
    """Memoized canonical digest of an (architecture or simulation) config dataclass."""
    return memoized_fingerprint(config, lambda: digest(type(config).__name__, config))


def workload_fingerprint(workload: Any) -> Hashable:
    """Digest of a GEMM/Layer workload including its operand tensors."""
    gemm = getattr(workload, "gemm", workload)

    def compute() -> str:
        return digest(
            "workload",
            gemm.name,
            gemm.m,
            gemm.n,
            gemm.k,
            gemm.input_bits,
            gemm.weight_bits,
            gemm.output_bits,
            gemm.layer_type,
            gemm.weight_static,
            gemm.weight_values,
            gemm.input_values,
            gemm.pruning_mask,
        )

    gemm_digest = memoized_fingerprint(gemm, compute)
    if gemm is workload:
        return gemm_digest
    return digest("layer", gemm_digest, workload.layer_name, workload.layer_type,
                  getattr(workload, "ptc_type", None))


def device_fingerprint(device: Any) -> Hashable:
    """Digest of a device model: its spec record plus its power-response state."""
    return memoized_fingerprint(
        device,
        lambda: digest("device", type(device).__name__, device.spec,
                       device.response),
    )



def netlist_fingerprint(netlist: Any) -> Hashable:
    """Digest of a netlist's instances and directed nets."""
    return memoized_fingerprint(
        netlist,
        lambda: digest(
            "netlist",
            netlist.name,
            tuple((i.name, i.device, i.role) for i in netlist.instances.values()),
            tuple(netlist.edge_list()),
        ),
    )





# -- the shared store ----------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one pass (stage) of the evaluation pipeline."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


class EvaluationCache:
    """Thread-safe memoization store shared by the engine's passes.

    Entries are keyed by ``(stage, key)`` where ``key`` is a canonical fingerprint
    of the pass inputs.  Per-stage :class:`CacheStats` record how much of a sweep
    was re-used.  With ``enabled=False`` every lookup recomputes (and counts a
    miss), which restores the unmemoized seed behaviour for A/B comparisons.
    """

    def __init__(self, enabled: bool = True, max_entries: Optional[int] = None) -> None:
        if max_entries is None:
            from repro.core import knobs

            max_entries = knobs.value("REPRO_CACHE_MAX_ENTRIES")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive when given")
        self.enabled = enabled
        self.max_entries = max_entries
        self._store: Dict[Tuple[str, Hashable], Any] = {}
        self._stats: Dict[str, CacheStats] = {}
        self._lock = threading.RLock()

    # -- core protocol ---------------------------------------------------------------
    def get_or_compute(self, stage: str, key: Hashable, compute: Callable[[], T]) -> T:
        """Return the cached value for ``(stage, key)`` or compute and store it.

        The compute callable runs outside the lock, so a slow pass does not
        serialize unrelated lookups; concurrent misses on the same key may
        compute twice but store a single (identical) result.
        """
        if not self.enabled:
            with self._lock:
                self._stat(stage).misses += 1
            return compute()
        with self._lock:
            stats = self._stat(stage)
            if (stage, key) in self._store:
                stats.hits += 1
                # LRU: re-insert on hit so recency, not insertion order, decides
                # which entry a bounded cache drops next.
                value = self._store.pop((stage, key))
                self._store[(stage, key)] = value
                return value
            stats.misses += 1
        value = compute()
        with self._lock:
            if (
                self.max_entries is not None
                and (stage, key) not in self._store
                and len(self._store) >= self.max_entries
            ):
                oldest = next(iter(self._store))
                del self._store[oldest]
                self._stat(oldest[0]).evictions += 1
            self._store[(stage, key)] = value
        return value

    def _stat(self, stage: str) -> CacheStats:
        if stage not in self._stats:
            self._stats[stage] = CacheStats()
        return self._stats[stage]

    # -- introspection ---------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, CacheStats]:
        """Per-stage hit/miss counters (a live view; copy before mutating)."""
        with self._lock:
            return dict(self._stats)

    @property
    def total_hits(self) -> int:
        with self._lock:
            return sum(s.hits for s in self._stats.values())

    @property
    def total_misses(self) -> int:
        with self._lock:
            return sum(s.misses for s in self._stats.values())

    def stats_summary(self) -> str:
        """One line per stage: ``stage: hits/lookups``."""
        with self._lock:
            lines = [
                f"{stage}: {s.hits}/{s.lookups} hits"
                for stage, s in sorted(self._stats.items())
            ]
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._store.clear()
            self._stats.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvaluationCache(enabled={self.enabled}, entries={len(self)}, "
            f"hits={self.total_hits}, misses={self.total_misses})"
        )
