"""Link-budget analysis: critical-path insertion loss and required laser power.

The critical path is the longest (highest-loss) laser-to-detector path of the
architecture's weighted DAG.  Given the photodetector sensitivity ``S`` (dBm), the
input encoding resolution ``b_in`` bits, the modulator extinction ratio ``ER`` (dB)
and the laser wall-plug efficiency, the minimum laser power follows Eq. (1):

    P_laser_optical = 10^((S + IL) / 10) * 2^b_in / (1 - 10^(-ER / 10))   [mW]
    P_laser_electrical = P_laser_optical / eta_WPE

The ``2^b_in`` factor provides enough optical dynamic range to resolve ``b_in``-bit
input levels at the target bit-error rate, and the extinction-ratio term is the
power penalty for a non-ideal modulator off state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arch.architecture import Architecture
from repro.arch.instance import Role
from repro.devices.photonic import (
    Laser,
    MachZehnderModulator,
    MicroRingModulator,
    Photodetector,
)
from repro.netlist.dag import CriticalPath


@dataclass
class LinkBudgetReport:
    """Result of the link-budget analysis for one architecture."""

    critical_path: CriticalPath
    insertion_loss_db: float
    pd_sensitivity_dbm: float
    extinction_ratio_db: float
    input_bits: int
    wall_plug_efficiency: float
    laser_optical_power_mw: float      # per laser / wavelength channel
    laser_electrical_power_mw: float   # per laser / wavelength channel
    num_sources: int
    total_laser_electrical_power_mw: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkBudgetReport(IL={self.insertion_loss_db:.2f} dB, "
            f"P_opt={self.laser_optical_power_mw:.3f} mW/ch, "
            f"P_elec_total={self.total_laser_electrical_power_mw:.3f} mW)"
        )


def required_laser_power_mw(
    insertion_loss_db: float,
    pd_sensitivity_dbm: float,
    input_bits: int,
    extinction_ratio_db: float,
    wall_plug_efficiency: float = 1.0,
) -> Tuple[float, float]:
    """Eq. (1): minimum (optical, electrical) laser power in mW.

    Raises :class:`ValueError` on non-physical parameters (non-positive extinction
    ratio or wall-plug efficiency outside (0, 1]).
    """
    if input_bits < 1:
        raise ValueError("input_bits must be >= 1")
    if extinction_ratio_db <= 0:
        raise ValueError("extinction ratio must be positive (dB)")
    if not 0 < wall_plug_efficiency <= 1:
        raise ValueError("wall-plug efficiency must be in (0, 1]")
    if insertion_loss_db < 0:
        raise ValueError("insertion loss must be non-negative")
    receiver_floor_mw = 10.0 ** ((pd_sensitivity_dbm + insertion_loss_db) / 10.0)
    er_penalty = 1.0 / (1.0 - 10.0 ** (-extinction_ratio_db / 10.0))
    optical_mw = receiver_floor_mw * (2.0**input_bits) * er_penalty
    electrical_mw = optical_mw / wall_plug_efficiency
    return optical_mw, electrical_mw


class LinkBudgetAnalyzer:
    """Derives the laser power requirement from an architecture description."""

    def __init__(self, default_sensitivity_dbm: float = -25.0,
                 default_extinction_ratio_db: float = 8.0,
                 default_wall_plug_efficiency: float = 0.2) -> None:
        self.default_sensitivity_dbm = default_sensitivity_dbm
        self.default_extinction_ratio_db = default_extinction_ratio_db
        self.default_wall_plug_efficiency = default_wall_plug_efficiency

    # -- device parameter discovery -----------------------------------------------------
    def _pd_sensitivity(self, arch: Architecture) -> float:
        for inst in arch.instances_by_role(Role.DETECTION):
            device = arch.library.get(inst.device)
            if isinstance(device, Photodetector):
                return device.sensitivity_dbm
        return self.default_sensitivity_dbm

    def _extinction_ratio(self, arch: Architecture) -> float:
        for role in (Role.INPUT_ENCODER, Role.WEIGHT_ENCODER):
            for inst in arch.instances_by_role(role):
                device = arch.library.get(inst.device)
                if isinstance(device, (MachZehnderModulator, MicroRingModulator)):
                    return device.extinction_ratio_db
        return self.default_extinction_ratio_db

    def optics_profile(self, arch: Architecture) -> Tuple[float, float, float]:
        """(PD sensitivity dBm, extinction ratio dB, laser wall-plug efficiency).

        These depend only on the architecture's device models and instance roles
        -- not on the scaling parameters -- so the evaluation engine memoizes
        them per shared structure across a design-space sweep.
        """
        wpe: Optional[float] = None
        for inst in arch.instances_by_role(Role.LIGHT_SOURCE):
            device = arch.library.get(inst.device)
            if isinstance(device, Laser):
                wpe = device.wall_plug_efficiency
        return (
            self._pd_sensitivity(arch),
            self._extinction_ratio(arch),
            wpe if wpe is not None else self.default_wall_plug_efficiency,
        )

    def num_channels(self, arch: Architecture) -> int:
        """Laser/comb carrier count: max(physical sources, wavelength channels)."""
        params = arch.params
        num_sources = sum(
            inst.instance_count(params)
            for inst in arch.instances_by_role(Role.LIGHT_SOURCE)
        )
        # A single comb source still emits one carrier per wavelength channel.
        return max(num_sources, arch.config.num_wavelengths)

    # -- main entry point -------------------------------------------------------------------
    def analyze(
        self,
        arch: Architecture,
        critical_path: Optional[CriticalPath] = None,
        optics: Optional[Tuple[float, float, float]] = None,
    ) -> LinkBudgetReport:
        """Derive the link budget.

        ``critical_path`` and ``optics`` (the :meth:`optics_profile` triple) may
        be supplied pre-computed -- e.g. memoized by the evaluation engine -- to
        skip the longest-path search and the device-parameter discovery scans.
        """
        if critical_path is None:
            critical_path = arch.critical_path()
        if optics is None:
            optics = self.optics_profile(arch)
        insertion_loss = critical_path.insertion_loss_db
        sensitivity, extinction, wpe = optics
        num_channels = self.num_channels(arch)
        optical_mw, electrical_mw = required_laser_power_mw(
            insertion_loss_db=insertion_loss,
            pd_sensitivity_dbm=sensitivity,
            input_bits=arch.config.input_bits,
            extinction_ratio_db=extinction,
            wall_plug_efficiency=wpe,
        )
        return LinkBudgetReport(
            critical_path=critical_path,
            insertion_loss_db=insertion_loss,
            pd_sensitivity_dbm=sensitivity,
            extinction_ratio_db=extinction,
            input_bits=arch.config.input_bits,
            wall_plug_efficiency=wpe,
            laser_optical_power_mw=optical_mw,
            laser_electrical_power_mw=electrical_mw,
            num_sources=num_channels,
            total_laser_electrical_power_mw=electrical_mw * num_channels,
        )
