"""Optical receiver SNR analysis.

The link-budget section of the paper derives both the laser power requirement and
the optical signal-to-noise ratio.  This module models the receiver chain noise for
a photodetector + TIA front end:

- shot noise of the received photocurrent: ``i_shot^2 = 2 q R P_rx Δf``;
- thermal (Johnson) noise of the front end:  ``i_th^2 = 4 k T Δf / R_load``;
- optional relative-intensity noise of the laser: ``i_rin^2 = (R P_rx)^2 · RIN · Δf``.

From the SNR it derives the effective number of resolvable amplitude levels
(and therefore bits) at the receiver, which is the quantity that must cover the
``b_in``-bit input encoding for the link to close.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.architecture import Architecture
from repro.core.constants import BOLTZMANN_J_PER_K, ELECTRON_CHARGE_C
from repro.core.link_budget import LinkBudgetAnalyzer, LinkBudgetReport


@dataclass(frozen=True)
class SNRReport:
    """Receiver signal-to-noise ratio and the effective resolvable precision."""

    received_power_mw: float
    photocurrent_ma: float
    shot_noise_ma2: float
    thermal_noise_ma2: float
    rin_noise_ma2: float
    bandwidth_ghz: float
    snr_linear: float

    @property
    def snr_db(self) -> float:
        if self.snr_linear <= 0:
            return float("-inf")
        return 10.0 * math.log10(self.snr_linear)

    @property
    def effective_bits(self) -> float:
        """Effective number of bits resolvable at the receiver (ENOB-style).

        Uses the standard ``ENOB = (SNR_dB - 1.76) / 6.02`` conversion, floored at 0.
        """
        return max(0.0, (self.snr_db - 1.76) / 6.02)

    def supports_bits(self, bits: int) -> bool:
        """Whether the receiver can resolve ``bits``-bit amplitude levels."""
        return self.effective_bits >= bits


class SNRAnalyzer:
    """Computes the receiver SNR implied by a link budget."""

    def __init__(
        self,
        responsivity_a_per_w: float = 1.0,
        load_resistance_ohm: float = 50.0,
        temperature_k: float = 300.0,
        rin_db_per_hz: float = -155.0,
    ) -> None:
        if responsivity_a_per_w <= 0:
            raise ValueError("responsivity must be positive")
        if load_resistance_ohm <= 0 or temperature_k <= 0:
            raise ValueError("load resistance and temperature must be positive")
        self.responsivity_a_per_w = responsivity_a_per_w
        self.load_resistance_ohm = load_resistance_ohm
        self.temperature_k = temperature_k
        self.rin_db_per_hz = rin_db_per_hz

    def analyze_received_power(
        self, received_power_mw: float, bandwidth_ghz: float
    ) -> SNRReport:
        """SNR for a given optical power at the detector and receiver bandwidth."""
        if received_power_mw < 0:
            raise ValueError("received power must be non-negative")
        if bandwidth_ghz <= 0:
            raise ValueError("bandwidth must be positive")
        power_w = received_power_mw * 1e-3
        bandwidth_hz = bandwidth_ghz * 1e9
        photocurrent_a = self.responsivity_a_per_w * power_w

        shot_a2 = 2.0 * ELECTRON_CHARGE_C * photocurrent_a * bandwidth_hz
        thermal_a2 = (
            4.0 * BOLTZMANN_J_PER_K * self.temperature_k * bandwidth_hz
            / self.load_resistance_ohm
        )
        rin_linear = 10.0 ** (self.rin_db_per_hz / 10.0)
        rin_a2 = (photocurrent_a**2) * rin_linear * bandwidth_hz

        noise_a2 = shot_a2 + thermal_a2 + rin_a2
        snr = (photocurrent_a**2) / noise_a2 if noise_a2 > 0 else float("inf")
        return SNRReport(
            received_power_mw=received_power_mw,
            photocurrent_ma=photocurrent_a * 1e3,
            shot_noise_ma2=shot_a2 * 1e6,
            thermal_noise_ma2=thermal_a2 * 1e6,
            rin_noise_ma2=rin_a2 * 1e6,
            bandwidth_ghz=bandwidth_ghz,
            snr_linear=snr,
        )

    def effective_bits_for_power(
        self, received_power_mw: np.ndarray, bandwidth_ghz: float
    ) -> np.ndarray:
        """Vectorized effective receiver bits for an array of received powers.

        The elementwise arithmetic mirrors :meth:`analyze_received_power` +
        :attr:`SNRReport.effective_bits` term for term; use it where many
        per-trial operating points need pricing and the full per-point report
        is not (e.g. the Monte Carlo throughput paths).  Zero received power
        maps to 0 effective bits, matching the scalar path's ``-inf`` dB floor.
        """
        if bandwidth_ghz <= 0:
            raise ValueError("bandwidth must be positive")
        power_w = np.asarray(received_power_mw, dtype=float) * 1e-3
        if np.any(power_w < 0):
            raise ValueError("received power must be non-negative")
        bandwidth_hz = bandwidth_ghz * 1e9
        photocurrent_a = self.responsivity_a_per_w * power_w
        shot_a2 = 2.0 * ELECTRON_CHARGE_C * photocurrent_a * bandwidth_hz
        thermal_a2 = (
            4.0 * BOLTZMANN_J_PER_K * self.temperature_k * bandwidth_hz
            / self.load_resistance_ohm
        )
        rin_a2 = (photocurrent_a**2) * 10.0 ** (self.rin_db_per_hz / 10.0) * bandwidth_hz
        noise_a2 = shot_a2 + thermal_a2 + rin_a2
        with np.errstate(divide="ignore", invalid="ignore"):
            snr = np.where(
                noise_a2 > 0,
                (photocurrent_a**2) / np.where(noise_a2 > 0, noise_a2, 1.0),
                np.inf,
            )
            snr_db = 10.0 * np.log10(snr)
        return np.maximum(0.0, (snr_db - 1.76) / 6.02)

    def analyze(
        self,
        arch: Architecture,
        link_budget: LinkBudgetReport = None,
    ) -> SNRReport:
        """SNR at the detector for an architecture's link budget.

        The received power is the per-channel laser optical power attenuated by the
        critical-path insertion loss; the receiver bandwidth is the PTC clock.
        """
        if link_budget is None:
            link_budget = LinkBudgetAnalyzer().analyze(arch)
        received_mw = link_budget.laser_optical_power_mw * 10.0 ** (
            -link_budget.insertion_loss_db / 10.0
        )
        return self.analyze_received_power(received_mw, arch.config.frequency_ghz)

    def minimum_power_for_bits(
        self, bits: int, bandwidth_ghz: float, tolerance_mw: float = 1e-6
    ) -> float:
        """Smallest received optical power (mW) resolving ``bits``-bit levels.

        Binary search over received power; raises :class:`ValueError` when the
        requested precision cannot be met below 1 W (an unphysical operating point).
        """
        if bits < 1:
            raise ValueError("bits must be >= 1")
        low, high = 0.0, 1e3
        if not self.analyze_received_power(high, bandwidth_ghz).supports_bits(bits):
            raise ValueError(f"{bits}-bit precision unreachable below {high} mW received power")
        while high - low > tolerance_mw:
            mid = (low + high) / 2.0
            if self.analyze_received_power(mid, bandwidth_ghz).supports_bits(bits):
                high = mid
            else:
                low = mid
        return high
