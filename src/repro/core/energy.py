"""Data-dependent, device-response-aware energy analysis.

For each architecture instance group the analyzer accumulates energy according to
its activity model:

- ``STATIC`` devices burn their (possibly data-dependent) power for the layer's
  *compute* time (``I * tau_comp``); reconfiguration stalls are charged to latency,
  not to heater/laser energy, matching the reference breakdowns;
- ``PER_CYCLE`` devices (converters, dynamic modulators) pay a per-cycle energy on
  every *active* cycle, where idle lanes (spatial under-utilization, pruned weights)
  are power-gated in data-aware mode;
- ``PER_RECONFIG`` devices (PCM cells) only pay energy when the stationary operand
  is rewritten;
- ``PASSIVE`` optics consume nothing.

Laser energy comes from the link-budget report (Eq. 1) rather than a fixed device
power, and data movement ("DM") from the memory analyzer.  In data-aware mode the
power of data-dependent devices (phase shifters, ring tuners) is the response-model
average over the *actual* workload operand values -- the behaviour highlighted in
Figs. 5 and 10(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.arch.architecture import Architecture
from repro.arch.instance import Activity, ArchInstance, Role
from repro.core.config import SimulationConfig
from repro.core.link_budget import LinkBudgetReport
from repro.core.report import component_label
from repro.dataflow.mapping import Mapping


@dataclass
class EnergyReport:
    """Per-component energy breakdown (pJ) for one mapped workload."""

    breakdown_pj: Dict[str, float] = field(default_factory=dict)
    total_time_ns: float = 0.0
    data_aware: bool = True

    @property
    def total_pj(self) -> float:
        return sum(self.breakdown_pj.values())

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    @property
    def compute_pj(self) -> float:
        return self.total_pj - self.breakdown_pj.get("DM", 0.0)

    @property
    def average_power_mw(self) -> Dict[str, float]:
        """Breakdown converted to average power over the execution time."""
        if self.total_time_ns <= 0:
            return {key: 0.0 for key in self.breakdown_pj}
        return {key: value / self.total_time_ns for key, value in self.breakdown_pj.items()}

    @property
    def total_power_mw(self) -> float:
        return sum(self.average_power_mw.values())

    def component(self, label: str) -> float:
        return self.breakdown_pj.get(label, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EnergyReport(total={self.total_pj:.1f} pJ over {self.total_time_ns:.1f} ns)"


class EnergyAnalyzer:
    """Accumulates data-aware device and data-movement energy for one mapping.

    ``cache`` (an :class:`~repro.core.cache.EvaluationCache`) optionally memoizes
    the data-aware sub-computations -- workload sparsity, normalized/subsampled
    operand values and per-device response-model power averages -- keyed by the
    workload operand digest and the device model, so design-space sweeps that
    re-simulate the same tensors on many architecture variants compute each
    average once.  Without a cache the behaviour is exactly the seed analyzer's.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        cache: Optional["EvaluationCache"] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.cache = cache

    # -- cached data-aware sub-computations ----------------------------------------
    def _workload_sparsity(self, workload) -> float:
        if self.cache is None or not self.cache.enabled:
            return workload.sparsity
        from repro.core.cache import workload_fingerprint

        key = workload_fingerprint(workload)
        return self.cache.get_or_compute("sparsity", key, lambda: workload.sparsity)

    def _cached_operand_values(
        self, mapping: Mapping, operand: Optional[str]
    ) -> Optional[np.ndarray]:
        if self.cache is None or not self.cache.enabled or operand is None:
            return self._operand_values(mapping, operand)
        from repro.core.cache import workload_fingerprint

        key = (
            workload_fingerprint(mapping.workload),
            operand,
            self.config.value_sample_limit,
        )
        return self.cache.get_or_compute(
            "operand_values", key, lambda: self._operand_values(mapping, operand)
        )

    # -- operand value handling -----------------------------------------------------
    def _operand_values(self, mapping: Mapping, operand: Optional[str]) -> Optional[np.ndarray]:
        """Normalized operand values routed to a device group (pruned weights excluded).

        Pruned weight cells are power-gated rather than parked at the zero-weight
        setting, so they are dropped here and accounted for by the keep-fraction
        scaling in :meth:`analyze`.
        """
        workload = mapping.workload
        if operand == "B":
            values = workload.normalized_weights()
            if values is not None and workload.pruning_mask is not None:
                values = values[workload.pruning_mask]
        elif operand == "A":
            values = workload.normalized_inputs()
        else:
            values = None
        if values is None:
            return None
        flat = np.asarray(values, dtype=float).ravel()
        limit = self.config.value_sample_limit
        if flat.size > limit:
            rng = np.random.default_rng(0)
            flat = rng.choice(flat, size=limit, replace=False)
        return flat

    def _device_power_mw(
        self,
        arch: Architecture,
        inst: ArchInstance,
        mapping: Mapping,
        data_aware: bool,
    ) -> float:
        device = arch.library.get(inst.device)
        if not (data_aware and inst.data_dependent):
            return device.nominal_power_mw()
        if self.cache is not None and self.cache.enabled:
            from repro.core.cache import device_fingerprint, workload_fingerprint

            key = (
                device_fingerprint(device),
                inst.operand,
                workload_fingerprint(mapping.workload),
                self.config.value_sample_limit,
            )
            return self.cache.get_or_compute(
                "device_power", key, lambda: self._average_power(device, mapping, inst.operand)
            )
        return self._average_power(device, mapping, inst.operand)

    def _average_power(self, device, mapping: Mapping, operand: Optional[str]) -> float:
        values = self._cached_operand_values(mapping, operand)
        if values is None or values.size == 0:
            return device.nominal_power_mw()
        return device.response.average_power_mw(values)

    # -- main entry point -------------------------------------------------------------
    def analyze(
        self,
        arch: Architecture,
        mapping: Mapping,
        link_budget: Optional[LinkBudgetReport] = None,
        memory_energy_pj: float = 0.0,
        memory_static_power_mw: float = 0.0,
        data_aware: Optional[bool] = None,
    ) -> EnergyReport:
        data_aware = self.config.data_aware if data_aware is None else data_aware
        params = dict(arch.params)
        params.update(mapping.params_overlay())
        total_time_ns = mapping.total_time_ns
        compute_time_ns = mapping.compute_time_ns
        active_cycles = mapping.compute_cycles
        cycle_ns = 1.0 / mapping.frequency_ghz
        workload = mapping.workload
        sparsity = self._workload_sparsity(workload) if data_aware else 0.0

        breakdown: Dict[str, float] = {}

        def add(label: str, energy_pj: float) -> None:
            if energy_pj <= 0:
                return
            breakdown[label] = breakdown.get(label, 0.0) + energy_pj

        # Laser: sized by the link budget, on for the optical compute phases.
        if link_budget is not None:
            add("Laser", link_budget.total_laser_electrical_power_mw * compute_time_ns)

        for inst in arch.energy_instances():
            if inst.role is Role.LIGHT_SOURCE and link_budget is not None:
                continue  # already accounted via the link budget
            if inst.activity is Activity.PASSIVE:
                continue
            count = inst.instance_count(params)
            if count == 0:
                continue
            device = arch.library.get(inst.device)
            label = component_label(inst)
            duty = inst.duty_factor(params)

            if inst.activity is Activity.STATIC:
                gating = 1.0
                if data_aware and inst.operand == "B":
                    gating = max(0.0, 1.0 - sparsity)
                power = self._device_power_mw(arch, inst, mapping, data_aware)
                add(label, count * power * duty * gating * compute_time_ns)

            elif inst.activity is Activity.PER_CYCLE:
                activity_scale = duty
                if self.config.include_idle_gating:
                    activity_scale *= mapping.utilization
                if data_aware and inst.role is Role.WEIGHT_ENCODER:
                    activity_scale *= max(0.0, 1.0 - sparsity)
                power = self._device_power_mw(arch, inst, mapping, data_aware)
                energy_per_cycle = power * cycle_ns + device.energy_per_op_pj
                add(label, count * energy_per_cycle * active_cycles * activity_scale)

            elif inst.activity is Activity.PER_RECONFIG:
                events = mapping.reconfig_events * mapping.forwards
                if events == 0:
                    continue
                write_energy = float(
                    device.spec.extra.get("write_energy_pj", device.energy_per_op_pj)
                )
                scale = 1.0
                if data_aware:
                    scale = max(0.0, 1.0 - sparsity)
                add(label, count * events * write_energy * scale)

        # Data movement: dynamic access energy plus buffer leakage over the active
        # compute phases (stall cycles are charged to latency, not energy).
        dm_energy = memory_energy_pj + memory_static_power_mw * compute_time_ns
        add("DM", dm_energy)

        return EnergyReport(
            breakdown_pj=breakdown,
            total_time_ns=total_time_ns,
            data_aware=data_aware,
        )
