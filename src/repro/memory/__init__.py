"""Memory substrate: CACTI-like analytical models and the four-level hierarchy.

SimPhony uses CACTI only for three quantities -- per-access energy, minimum cycle
time, and area of on-chip SRAM buffers -- plus a fixed per-bit cost for off-chip
HBM.  :mod:`repro.memory.cacti` provides analytical models calibrated to published
CACTI-class numbers with the standard capacity / bus-width / technology-node scaling
trends, and :mod:`repro.memory.hierarchy` assembles them into the HBM / GLB / LB /
RF hierarchy with bandwidth-adaptive multi-block GLB sizing.
"""

from repro.memory.cacti import HBMModel, RegisterFileModel, SRAMModel
from repro.memory.hierarchy import (
    MemoryHierarchy,
    MemoryLevel,
    MemoryLevelConfig,
    required_glb_blocks,
)

__all__ = [
    "SRAMModel",
    "HBMModel",
    "RegisterFileModel",
    "MemoryHierarchy",
    "MemoryLevel",
    "MemoryLevelConfig",
    "required_glb_blocks",
]
