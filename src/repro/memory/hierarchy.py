"""Bandwidth-adaptive four-level memory hierarchy (HBM / GLB / LB / RF).

Each level stores operands A, B and the output in progressively smaller sizes: the
entire model at the HBM level, a single layer at the GLB level, the processing
matrix dimensions at the LB level, and one cycle's worth of data at the RF level.
The GLB is a multi-block SRAM whose block count is searched automatically so its
bandwidth meets the architecture's per-cycle demand -- the paper's
``#blocks = ceil(tau_GLB * dBW / (b_bus * 8))`` rule -- so the computing cores are
never memory bottlenecked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Union

from repro.memory.cacti import HBMModel, RegisterFileModel, SRAMModel

MemoryModel = Union[SRAMModel, RegisterFileModel, HBMModel]


class MemoryLevel(str, Enum):
    """The four levels of the on/off-chip memory hierarchy."""

    HBM = "hbm"
    GLB = "glb"
    LB = "lb"
    RF = "rf"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class MemoryLevelConfig:
    """User-facing knobs for one memory level."""

    capacity_bytes: int
    buswidth_bits: int = 64
    tech_nm: float = 45.0
    num_blocks: int = 1


def required_glb_blocks(
    demand_bytes_per_ns: float,
    glb_cycle_ns: float,
    buswidth_bits: int,
) -> int:
    """Minimum number of GLB blocks meeting a bandwidth demand.

    Implements ``#blocks = ceil(tau_GLB * dBW / (b_bus / 8))``: each block delivers
    one bus word (``buswidth_bits / 8`` bytes) per GLB cycle (``tau_GLB``), so enough
    blocks must be provisioned to cover the per-cycle byte demand.
    """
    if demand_bytes_per_ns < 0:
        raise ValueError("bandwidth demand must be non-negative")
    if glb_cycle_ns <= 0 or buswidth_bits <= 0:
        raise ValueError("glb_cycle_ns and buswidth_bits must be positive")
    bytes_per_block_per_cycle = buswidth_bits / 8.0
    demand_bytes_per_cycle = demand_bytes_per_ns * glb_cycle_ns
    return max(1, int(math.ceil(demand_bytes_per_cycle / bytes_per_block_per_cycle)))


@dataclass
class MemoryHierarchy:
    """The assembled HBM / GLB / LB / RF hierarchy."""

    levels: Dict[MemoryLevel, MemoryModel] = field(default_factory=dict)

    # -- construction -------------------------------------------------------------
    @classmethod
    def default(
        cls,
        glb_bytes: int = 2 * 1024 * 1024,
        lb_bytes: int = 64 * 1024,
        rf_bytes: int = 2 * 1024,
        buswidth_bits: int = 256,
        tech_nm: float = 45.0,
        glb_blocks: int = 1,
        hbm: Optional[HBMModel] = None,
    ) -> "MemoryHierarchy":
        """Build a hierarchy with explicit capacities (45 nm CACTI-class SRAM)."""
        return cls(
            levels={
                MemoryLevel.HBM: hbm or HBMModel(),
                MemoryLevel.GLB: SRAMModel(
                    capacity_bytes=glb_bytes,
                    buswidth_bits=buswidth_bits,
                    tech_nm=tech_nm,
                    num_blocks=glb_blocks,
                ),
                MemoryLevel.LB: SRAMModel(
                    capacity_bytes=lb_bytes,
                    buswidth_bits=buswidth_bits,
                    tech_nm=tech_nm,
                ),
                MemoryLevel.RF: RegisterFileModel(capacity_bytes=rf_bytes),
            }
        )

    @classmethod
    def for_workload(
        cls,
        max_layer_bytes: float,
        tile_bytes: float,
        cycle_bytes: float,
        buswidth_bits: int = 256,
        tech_nm: float = 45.0,
        hbm: Optional[HBMModel] = None,
    ) -> "MemoryHierarchy":
        """Size the on-chip levels from the workload, per the paper's sizing rule.

        GLB holds one layer, LB the currently processed matrix partitions, RF one
        cycle's operands.  Capacities are rounded up to powers of two (as a real
        SRAM compiler would) with a small floor to keep the models in a sane range.
        """

        def _round_pow2(value: float, floor: int) -> int:
            target = max(int(math.ceil(value)), floor)
            return 1 << int(math.ceil(math.log2(target)))

        glb_bytes = _round_pow2(max_layer_bytes, 64 * 1024)
        lb_bytes = _round_pow2(tile_bytes, 4 * 1024)
        rf_bytes = _round_pow2(cycle_bytes, 256)
        return cls.default(
            glb_bytes=glb_bytes,
            lb_bytes=lb_bytes,
            rf_bytes=rf_bytes,
            buswidth_bits=buswidth_bits,
            tech_nm=tech_nm,
            hbm=hbm,
        )

    # -- accessors -----------------------------------------------------------------
    def level(self, level: MemoryLevel) -> MemoryModel:
        try:
            return self.levels[level]
        except KeyError:
            raise KeyError(f"memory hierarchy has no level {level!r}") from None

    @property
    def glb(self) -> MemoryModel:
        return self.level(MemoryLevel.GLB)

    @property
    def hbm(self) -> MemoryModel:
        return self.level(MemoryLevel.HBM)

    # -- bandwidth adaptation ----------------------------------------------------------
    def adapt_glb_bandwidth(self, demand_bytes_per_ns: float) -> int:
        """Re-bank the GLB so its bandwidth meets ``demand_bytes_per_ns``.

        Returns the chosen block count.  The search uses the paper's closed form and
        then verifies against the re-banked macro's actual bandwidth (the block
        cycle time shrinks as blocks get smaller, so the closed form is a safe
        upper bound on the required count).
        """
        glb = self.levels[MemoryLevel.GLB]
        if not isinstance(glb, SRAMModel):
            raise TypeError("GLB must be an SRAMModel to adapt its banking")
        blocks = required_glb_blocks(
            demand_bytes_per_ns, glb.access_time_ns, glb.buswidth_bits
        )
        rebanked = glb.with_blocks(blocks)
        # Shrinking blocks speeds them up; trim excess blocks while demand is met.
        while blocks > 1:
            candidate = glb.with_blocks(blocks - 1)
            if candidate.bandwidth_bits_per_ns / 8.0 >= demand_bytes_per_ns:
                blocks -= 1
                rebanked = candidate
            else:
                break
        self.levels[MemoryLevel.GLB] = rebanked
        return blocks

    def meets_bandwidth(self, level: MemoryLevel, demand_bytes_per_ns: float) -> bool:
        """Check whether a level's peak bandwidth covers the per-ns byte demand."""
        return self.level(level).bandwidth_bits_per_ns / 8.0 >= demand_bytes_per_ns

    # -- aggregate metrics ---------------------------------------------------------------
    def access_energy_pj(self, level: MemoryLevel, num_bits: float, write: bool = False) -> float:
        return self.level(level).access_energy_pj(num_bits, write=write)

    def onchip_area_mm2(self) -> float:
        """Total on-chip SRAM area (HBM is off-chip and excluded)."""
        return sum(
            model.area_mm2
            for lvl, model in self.levels.items()
            if lvl is not MemoryLevel.HBM
        )

    def leakage_mw(self) -> float:
        return sum(model.leakage_mw for model in self.levels.values())

    def onchip_leakage_mw(self) -> float:
        """Leakage of the on-chip buffers only (HBM refresh is not attributed here)."""
        return sum(
            model.leakage_mw
            for lvl, model in self.levels.items()
            if lvl is not MemoryLevel.HBM
        )

    def describe(self) -> Dict[str, Dict[str, float]]:
        """Summary dictionary used in reports and tests."""
        summary: Dict[str, Dict[str, float]] = {}
        for lvl, model in self.levels.items():
            summary[lvl.value] = {
                "capacity_bytes": float(model.capacity_bytes),
                "read_energy_pj_per_bit": float(model.read_energy_pj_per_bit),
                "bandwidth_gb_per_s": float(model.bandwidth_bits_per_ns / 8.0),
                "area_mm2": float(model.area_mm2),
            }
            if isinstance(model, SRAMModel):
                summary[lvl.value]["num_blocks"] = float(model.num_blocks)
        return summary
