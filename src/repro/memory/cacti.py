"""Analytical SRAM / register-file / HBM models (CACTI substitute).

The paper runs CACTI 7 at 45 nm to obtain SRAM access energy, minimum cycle time and
area.  Without the external tool we use analytical models anchored to a published
CACTI-class reference point (a 64 KiB, 64-bit-wide SRAM macro at 45 nm) and apply
the standard scaling trends:

- dynamic access energy and access time grow roughly with the square root of the
  macro capacity (bitline/wordline lengths grow with sqrt(bits));
- area grows linearly with capacity plus a fixed periphery overhead;
- technology scaling reduces energy ~quadratically, delay ~linearly and area
  ~quadratically with feature size;
- banking (multi-block) divides the macro into independent blocks: each block is
  smaller (faster, lower energy per access) and blocks can be accessed in parallel,
  which is exactly the property the bandwidth-adaptive GLB sizing exploits.

Absolute values are representative, not sign-off accurate; what matters for the
reproduction is that the *relative* behaviour (bigger buffers cost more per access,
more blocks give more bandwidth, HBM is an order of magnitude more expensive per
bit) matches the reference tool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Reference point: 64 KiB, 64-bit bus, 45 nm SRAM macro (CACTI-class numbers).
_REF_CAPACITY_BYTES = 64 * 1024
_REF_TECH_NM = 45.0
_REF_READ_ENERGY_PJ_PER_BIT = 0.30
_REF_WRITE_ENERGY_PJ_PER_BIT = 0.35
_REF_ACCESS_TIME_NS = 1.0
_REF_AREA_MM2 = 0.30
_REF_LEAKAGE_MW = 5.0


@dataclass(frozen=True)
class SRAMModel:
    """Analytical on-chip SRAM buffer model.

    ``capacity_bytes`` is the total macro capacity; ``num_blocks`` partitions it into
    independently accessible blocks (banks) that multiply the available bandwidth.
    """

    capacity_bytes: int
    buswidth_bits: int = 64
    tech_nm: float = 45.0
    num_blocks: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.buswidth_bits <= 0:
            raise ValueError("buswidth_bits must be positive")
        if self.tech_nm <= 0:
            raise ValueError("tech_nm must be positive")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")

    # -- scaling helpers ---------------------------------------------------------
    @property
    def block_capacity_bytes(self) -> float:
        return self.capacity_bytes / self.num_blocks

    def _capacity_scale(self) -> float:
        """sqrt scaling of per-access cost with the (per-block) capacity."""
        return math.sqrt(self.block_capacity_bytes / _REF_CAPACITY_BYTES)

    def _tech_energy_scale(self) -> float:
        return (self.tech_nm / _REF_TECH_NM) ** 2

    def _tech_delay_scale(self) -> float:
        return self.tech_nm / _REF_TECH_NM

    def _tech_area_scale(self) -> float:
        return (self.tech_nm / _REF_TECH_NM) ** 2

    # -- energy -------------------------------------------------------------------
    @property
    def read_energy_pj_per_bit(self) -> float:
        return _REF_READ_ENERGY_PJ_PER_BIT * self._capacity_scale() * self._tech_energy_scale()

    @property
    def write_energy_pj_per_bit(self) -> float:
        return _REF_WRITE_ENERGY_PJ_PER_BIT * self._capacity_scale() * self._tech_energy_scale()

    def access_energy_pj(self, num_bits: float, write: bool = False) -> float:
        """Energy to move ``num_bits`` through this buffer (read or write)."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        per_bit = self.write_energy_pj_per_bit if write else self.read_energy_pj_per_bit
        return per_bit * num_bits

    # -- timing --------------------------------------------------------------------
    @property
    def access_time_ns(self) -> float:
        """Minimum random-access cycle time of one block."""
        return _REF_ACCESS_TIME_NS * max(self._capacity_scale(), 0.25) * self._tech_delay_scale()

    @property
    def bandwidth_bits_per_ns(self) -> float:
        """Peak bandwidth: every block delivers a bus word per access cycle."""
        return self.num_blocks * self.buswidth_bits / self.access_time_ns

    @property
    def bandwidth_gb_per_s(self) -> float:
        """Peak bandwidth in gigabytes per second."""
        return self.bandwidth_bits_per_ns / 8.0

    # -- area / leakage ---------------------------------------------------------------
    @property
    def area_mm2(self) -> float:
        capacity_ratio = self.capacity_bytes / _REF_CAPACITY_BYTES
        # Each additional block adds periphery (decoders, sense amps): ~2 % per block.
        banking_overhead = 1.0 + 0.02 * (self.num_blocks - 1)
        return _REF_AREA_MM2 * capacity_ratio * banking_overhead * self._tech_area_scale()

    @property
    def leakage_mw(self) -> float:
        capacity_ratio = self.capacity_bytes / _REF_CAPACITY_BYTES
        return _REF_LEAKAGE_MW * capacity_ratio * self._tech_energy_scale()

    def with_blocks(self, num_blocks: int) -> "SRAMModel":
        """Return the same macro re-banked into ``num_blocks`` blocks."""
        return SRAMModel(
            capacity_bytes=self.capacity_bytes,
            buswidth_bits=self.buswidth_bits,
            tech_nm=self.tech_nm,
            num_blocks=num_blocks,
        )


@dataclass(frozen=True)
class RegisterFileModel:
    """Small, fast register file feeding the PTC every cycle.

    Modeled as a flat per-bit cost: register files are too small for the SRAM
    scaling laws to be meaningful.
    """

    capacity_bytes: int = 1024
    buswidth_bits: int = 256
    energy_pj_per_bit: float = 0.02
    access_time_ns: float = 0.1
    area_mm2_per_kb: float = 0.002
    leakage_mw_per_kb: float = 0.05

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")

    @property
    def read_energy_pj_per_bit(self) -> float:
        return self.energy_pj_per_bit

    @property
    def write_energy_pj_per_bit(self) -> float:
        return self.energy_pj_per_bit

    def access_energy_pj(self, num_bits: float, write: bool = False) -> float:
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        return self.energy_pj_per_bit * num_bits

    @property
    def bandwidth_bits_per_ns(self) -> float:
        return self.buswidth_bits / self.access_time_ns

    @property
    def area_mm2(self) -> float:
        return self.area_mm2_per_kb * self.capacity_bytes / 1024.0

    @property
    def leakage_mw(self) -> float:
        return self.leakage_mw_per_kb * self.capacity_bytes / 1024.0


@dataclass(frozen=True)
class HBMModel:
    """Off-chip high-bandwidth memory stack.

    A flat per-bit access energy (HBM2-class ~3.9 pJ/bit including PHY) and a fixed
    peak bandwidth.  The stack sits off-chip, so it contributes no on-chip area.
    """

    capacity_bytes: int = 8 * 1024 * 1024 * 1024
    energy_pj_per_bit: float = 3.9
    bandwidth_gb_per_s: float = 256.0
    static_power_mw: float = 500.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.energy_pj_per_bit < 0 or self.bandwidth_gb_per_s <= 0:
            raise ValueError("invalid HBM parameters")

    @property
    def read_energy_pj_per_bit(self) -> float:
        return self.energy_pj_per_bit

    @property
    def write_energy_pj_per_bit(self) -> float:
        return self.energy_pj_per_bit

    def access_energy_pj(self, num_bits: float, write: bool = False) -> float:
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        return self.energy_pj_per_bit * num_bits

    @property
    def bandwidth_bits_per_ns(self) -> float:
        return self.bandwidth_gb_per_s * 8.0

    @property
    def access_time_ns(self) -> float:
        return 100.0  # first-access latency; bandwidth dominates for streaming

    @property
    def area_mm2(self) -> float:
        return 0.0

    @property
    def leakage_mw(self) -> float:
        return self.static_power_mw
