"""Variation-aware Monte Carlo accuracy: device noise -> ONN inference accuracy.

The subsystem closes the loop the cross-layer framework was missing: device and
circuit non-idealities (weight-encoding error, phase noise, crosstalk,
insertion-loss / thermal drift) propagate through the link budget and the
SNR-derived receiver precision into workload-level inference *accuracy*, which
then stands next to energy / latency / area as a first-class objective:

- :mod:`repro.variation.models`     -- composable :class:`NoiseSpec` variation models;
- :mod:`repro.variation.sampler`    -- deterministic per-trial seeding, backend-invariant,
  in two modes: the bit-exact SeedSequence contract (default) and the
  counter-based ``REPRO_RNG=philox`` throughput mode;
- :mod:`repro.variation.accuracy`   -- noisy functional forward + accuracy/error metrics;
- :mod:`repro.variation.stages`     -- per-stage (rng/forward/quantize/metrics)
  wall-clock attribution for the bench harness;
- :mod:`repro.variation.montecarlo` -- trial fan-out over ``repro.exec`` backends,
  the :class:`AccuracyRequest` study record and the engine-integrated
  :func:`evaluate_accuracy` entry point.

The engine side lives in :mod:`repro.core.engine` (``receiver_precision`` and
``mc_accuracy`` passes, :meth:`EvaluationEngine.run_accuracy`); the exploration
side in :mod:`repro.explore.dse` (``accuracy`` / ``error_rate`` DesignPoint
objectives); registered scenarios in :mod:`repro.scenarios.catalog`
(``variation_robustness``, ``accuracy_vs_precision``, ``accuracy_energy_pareto``).
"""

from repro.variation.accuracy import (
    AccuracyReport,
    TrialResult,
    classification_agreement,
    classification_agreement_batch,
    model_fingerprint,
    noisy_forward,
    noisy_forward_batch,
    output_rmse,
    output_rmse_batch,
    reference_forward,
)
from repro.variation.models import (
    IDEAL,
    Crosstalk,
    LinkLossDrift,
    NoiseSpec,
    PhaseError,
    VariationModel,
    WeightEncodingError,
    standard_noise,
)
from repro.variation.montecarlo import (
    AccuracyRequest,
    LinkOperatingPoint,
    evaluate_accuracy,
    run_monte_carlo,
)
from repro.variation.sampler import (
    make_trial_rng,
    philox_fused_normals,
    philox_trial_rng,
    rng_mode,
    trial_rng,
    trial_rngs,
    trial_seed_sequence,
)
from repro.variation.stages import (
    STAGE_NAMES,
    StageAccumulator,
    observe_stages,
    stage,
)

__all__ = [
    "AccuracyReport",
    "AccuracyRequest",
    "Crosstalk",
    "IDEAL",
    "LinkLossDrift",
    "LinkOperatingPoint",
    "NoiseSpec",
    "PhaseError",
    "TrialResult",
    "VariationModel",
    "WeightEncodingError",
    "STAGE_NAMES",
    "StageAccumulator",
    "classification_agreement",
    "classification_agreement_batch",
    "evaluate_accuracy",
    "make_trial_rng",
    "model_fingerprint",
    "noisy_forward",
    "noisy_forward_batch",
    "observe_stages",
    "output_rmse",
    "output_rmse_batch",
    "philox_fused_normals",
    "philox_trial_rng",
    "reference_forward",
    "rng_mode",
    "run_monte_carlo",
    "stage",
    "standard_noise",
    "trial_rng",
    "trial_rngs",
    "trial_seed_sequence",
]
