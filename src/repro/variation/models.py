"""Composable device-variation and noise models.

Each model is a small frozen dataclass describing one hardware non-ideality and
how it perturbs an ONN inference:

- :class:`WeightEncodingError` -- stochastic error on the weight-encoding DACs /
  phase-shifter drivers (relative or absolute Gaussian on the weight values);
- :class:`PhaseError` -- phase-programming noise on interferometric meshes,
  modeled as the amplitude penalty ``cos(dphi)`` of a misaligned phase;
- :class:`Crosstalk` -- deterministic inter-channel leakage: every output lane
  receives a ``coupling`` fraction of the average of its sibling lanes;
- :class:`LinkLossDrift` -- insertion-loss / thermal drift on the optical link
  budget: a deterministic ``mean_db`` penalty (thermal operating-point shift)
  plus a per-trial Gaussian ``sigma_db`` drift.  This is the model that couples
  variation to the receiver: extra loss lowers the received power, which lowers
  the SNR-derived effective bits, which coarsens the DAC/ADC grid the link can
  actually resolve.

A :class:`NoiseSpec` composes any number of models.  Specs are pure data
(frozen dataclasses of floats), so they are picklable for process-backend
fan-out and canonically fingerprintable for the engine's memoized passes, and
``scaled(factor)`` produces the magnitude sweeps robustness studies need.

All stochastic perturbations draw from the ``numpy.random.Generator`` handed in
by the caller; models never hold RNG state, which is what keeps Monte Carlo
trials bit-identical across execution backends (see
:mod:`repro.variation.sampler`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class VariationModel:
    """Base class: a no-op non-ideality.  Subclasses override what they affect."""

    def perturb_weights(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return weights

    def perturb_activations(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return x

    def perturb_weights_batch(
        self, weights: np.ndarray, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Perturb a ``(trials, *shape)`` weight stack, one RNG per trial.

        Trial ``i``'s perturbation draws exclusively from ``rngs[i]`` in the
        same order as :meth:`perturb_weights` would -- the batched path
        consumes each per-trial stream bit-identically to the serial loop.
        The base implementation applies the serial method per slice (so any
        custom model is batch-safe); stochastic built-ins override it with one
        vectorized arithmetic pass over the stacked draws.
        """
        slices = [weights[i] for i in range(len(rngs))]
        outs = [self.perturb_weights(s, rng) for s, rng in zip(slices, rngs)]
        if all(out is s for out, s in zip(outs, slices)):
            return weights  # no-op model: keep the (possibly broadcast) stack
        return np.stack(outs)

    def perturb_activations_batch(
        self, x: np.ndarray, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Perturb a ``(trials, ...)`` activation stack, one RNG per trial."""
        slices = [x[i] for i in range(len(rngs))]
        outs = [self.perturb_activations(s, rng) for s, rng in zip(slices, rngs)]
        if all(out is s for out, s in zip(outs, slices)):
            return x
        return np.stack(outs)

    def weight_draw_count(self, size: int) -> int:
        """Standard-normal draws :meth:`perturb_weights` consumes for ``size``
        weight elements (0 for deterministic models).  Only consulted on the
        fused-sampling fast path, which is restricted to the built-in model
        types -- custom subclasses always take the per-model batch path."""
        return 0

    def apply_weight_noise(self, weights: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Apply this model's perturbation given pre-drawn standard normals.

        ``weights`` is a ``(trials, *shape)`` stack and ``z`` a ``(trials,
        weight_draw_count)`` slice of each trial's fused standard-normal block;
        the arithmetic must reproduce :meth:`perturb_weights` bit for bit
        (``rng.normal(0, sigma, n)`` equals ``sigma * standard_normal(n)`` on
        the same stream position).
        """
        return weights

    def static_loss_db(self) -> float:
        """Deterministic extra insertion loss (dB) this model adds to the link."""
        return 0.0

    def sample_loss_db(self, rng: np.random.Generator) -> float:
        """Per-trial extra insertion loss (dB); defaults to the static part."""
        return self.static_loss_db()

    def loss_draw_count(self) -> int:
        """Standard-normal draws :meth:`sample_loss_db` consumes per trial.

        Zero for deterministic models; consulted only on the fused-sampling
        fast path (built-in model types), like :meth:`weight_draw_count`.
        """
        return 0

    def loss_db_from_draws(self, z: np.ndarray) -> np.ndarray:
        """Per-trial loss (dB) from a ``(trials, loss_draw_count)`` draw block."""
        return np.full(z.shape[0], self.static_loss_db())

    def scaled(self, factor: float) -> "VariationModel":
        """This model with every magnitude parameter scaled by ``factor``."""
        return self


def _check_non_negative(label: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{label} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class WeightEncodingError(VariationModel):
    """Gaussian error on the encoded weight values.

    ``relative=True`` (the default) models driver/DAC gain error
    (``w * (1 + N(0, sigma))``); ``relative=False`` models an additive offset
    in weight units.
    """

    sigma: float = 0.01
    relative: bool = True

    def __post_init__(self) -> None:
        _check_non_negative("WeightEncodingError.sigma", self.sigma)

    def perturb_weights(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noise = rng.normal(0.0, self.sigma, size=weights.shape)
        if self.relative:
            return weights * (1.0 + noise)
        return weights + noise

    def perturb_weights_batch(
        self, weights: np.ndarray, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        # Per-trial draws from each trial's own stream (the seed contract),
        # applied in one vectorized pass over the stack.
        shape = weights.shape[1:]
        noise = np.stack([rng.normal(0.0, self.sigma, size=shape) for rng in rngs])
        if self.relative:
            return weights * (1.0 + noise)
        return weights + noise

    def weight_draw_count(self, size: int) -> int:
        return size

    def apply_weight_noise(self, weights: np.ndarray, z: np.ndarray) -> np.ndarray:
        noise = self.sigma * z.reshape(weights.shape)
        if self.relative:
            return weights * (1.0 + noise)
        return weights + noise

    def scaled(self, factor: float) -> "WeightEncodingError":
        return dataclasses.replace(self, sigma=self.sigma * factor)


@dataclass(frozen=True)
class PhaseError(VariationModel):
    """Phase-programming noise on an interferometric weight: ``w * cos(dphi)``.

    A misprogrammed phase rotates part of the field out of the signal
    quadrature; the projection onto the intended quadrature shrinks by
    ``cos(dphi)``, so phase noise only ever *attenuates* the effective weight.
    """

    sigma_rad: float = 0.01

    def __post_init__(self) -> None:
        _check_non_negative("PhaseError.sigma_rad", self.sigma_rad)

    def perturb_weights(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        dphi = rng.normal(0.0, self.sigma_rad, size=weights.shape)
        return weights * np.cos(dphi)

    def perturb_weights_batch(
        self, weights: np.ndarray, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        shape = weights.shape[1:]
        dphi = np.stack([rng.normal(0.0, self.sigma_rad, size=shape) for rng in rngs])
        return weights * np.cos(dphi)

    def weight_draw_count(self, size: int) -> int:
        return size

    def apply_weight_noise(self, weights: np.ndarray, z: np.ndarray) -> np.ndarray:
        return weights * np.cos(self.sigma_rad * z.reshape(weights.shape))

    def scaled(self, factor: float) -> "PhaseError":
        return dataclasses.replace(self, sigma_rad=self.sigma_rad * factor)


@dataclass(frozen=True)
class Crosstalk(VariationModel):
    """Deterministic inter-channel leakage between the lanes of a layer output.

    Every lane keeps ``1 - coupling`` of its own value and receives ``coupling``
    times the mean of the other lanes -- the aggregate first-order effect of
    waveguide crossings and imperfect demultiplexing.  ``coupling`` is a linear
    power ratio; use :meth:`from_db` for the usual "-30 dB crosstalk" spec.
    """

    coupling: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 <= self.coupling <= 1.0:
            raise ValueError(
                f"Crosstalk.coupling must be in [0, 1], got {self.coupling!r}"
            )

    @classmethod
    def from_db(cls, suppression_db: float) -> "Crosstalk":
        """Crosstalk with the given suppression (e.g. ``30.0`` for -30 dB)."""
        return cls(coupling=10.0 ** (-suppression_db / 10.0))

    def perturb_activations(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.coupling == 0.0 or x.ndim == 0 or x.shape[-1] < 2:
            return x
        lanes = x.shape[-1]
        leak = (x.sum(axis=-1, keepdims=True) - x) / (lanes - 1)
        return (1.0 - self.coupling) * x + self.coupling * leak

    def perturb_activations_batch(
        self, x: np.ndarray, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        # Deterministic and defined on the last axis, so the serial formula is
        # batch-shape-agnostic; this spelling reuses buffers (the stacks are
        # the batched path's biggest tensors) while staying bit-identical:
        # every elementwise op matches the serial expression term for term
        # (float addition is commutative, so summing c*leak into (1-c)*x
        # equals the serial (1-c)*x + c*leak).
        if self.coupling == 0.0 or x.ndim == 0 or x.shape[-1] < 2:
            return x
        lanes = x.shape[-1]
        leak = np.subtract(x.sum(axis=-1, keepdims=True), x)
        leak /= lanes - 1
        leak *= self.coupling
        out = np.multiply(x, 1.0 - self.coupling)
        out += leak
        return out

    def scaled(self, factor: float) -> "Crosstalk":
        return dataclasses.replace(self, coupling=min(1.0, self.coupling * factor))


@dataclass(frozen=True)
class LinkLossDrift(VariationModel):
    """Insertion-loss / thermal drift on the link budget.

    ``mean_db`` is the deterministic operating-point penalty (thermal drift of
    couplers and ring resonances); ``sigma_db`` adds a per-trial Gaussian
    component.  Sampled drift is floored at zero extra loss -- variation never
    makes the link *better* than its nominal budget.
    """

    mean_db: float = 0.0
    sigma_db: float = 0.0

    def __post_init__(self) -> None:
        _check_non_negative("LinkLossDrift.mean_db", self.mean_db)
        _check_non_negative("LinkLossDrift.sigma_db", self.sigma_db)

    def static_loss_db(self) -> float:
        return self.mean_db

    def sample_loss_db(self, rng: np.random.Generator) -> float:
        drift = self.mean_db + rng.normal(0.0, self.sigma_db)
        return max(0.0, drift)

    def loss_draw_count(self) -> int:
        return 1

    def loss_db_from_draws(self, z: np.ndarray) -> np.ndarray:
        # rng.normal(0, sigma) == sigma * standard_normal() at the same stream
        # position, so the pre-drawn form matches sample_loss_db's arithmetic.
        return np.maximum(0.0, self.mean_db + self.sigma_db * z[:, 0])

    def scaled(self, factor: float) -> "LinkLossDrift":
        return dataclasses.replace(
            self, mean_db=self.mean_db * factor, sigma_db=self.sigma_db * factor
        )


@dataclass(frozen=True)
class NoiseSpec:
    """An ordered composition of variation models.

    Model order is part of the spec: stochastic models consume the trial RNG in
    sequence, so two specs with the same models in a different order are
    (deliberately) different specs.
    """

    models: Tuple[VariationModel, ...] = ()

    def __post_init__(self) -> None:
        for model in self.models:
            if not isinstance(model, VariationModel):
                raise TypeError(
                    f"NoiseSpec models must be VariationModel instances, "
                    f"got {type(model).__name__}"
                )

    # -- composition ------------------------------------------------------------------
    def perturb_weights(self, weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for model in self.models:
            weights = model.perturb_weights(weights, rng)
        return weights

    def perturb_activations(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for model in self.models:
            x = model.perturb_activations(x, rng)
        return x

    def perturb_weights_batch(
        self, weights: np.ndarray, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """One perturbed weight stack per trial: ``(len(rngs), *weights.shape)``.

        ``weights`` is the *unstacked* base tensor; each model's vectorized
        batch path runs once over the whole stack, drawing trial ``i``'s noise
        from ``rngs[i]`` in model order -- exactly the stream
        :meth:`perturb_weights` would consume trial by trial.  Models that
        inherit the base (identity) weight hook are skipped outright: they
        consume no stream and touch no weights, so there is nothing to batch.
        """
        stacked = np.broadcast_to(weights, (len(rngs),) + weights.shape)
        for model in self.models:
            if type(model).perturb_weights is VariationModel.perturb_weights:
                continue
            stacked = model.perturb_weights_batch(stacked, rngs)
        return stacked

    def perturb_activations_batch(
        self, x: np.ndarray, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Perturb a ``(trials, ...)`` activation stack, one RNG per trial."""
        for model in self.models:
            if type(model).perturb_activations is VariationModel.perturb_activations:
                continue
            x = model.perturb_activations_batch(x, rngs)
        return x

    # -- fused sampling ----------------------------------------------------------------
    def supports_fused_sampling(self) -> bool:
        """Whether every model's per-trial draw layout is statically known.

        Restricted to the *exact* built-in model types: a subclass may
        override :meth:`VariationModel.perturb_weights` without declaring its
        draw count, and silently mispositioning its stream would corrupt the
        per-trial seed contract -- unknown types always take the per-model
        batch path instead.
        """
        return all(type(model) in _FUSED_DRAW_TYPES for model in self.models)

    def weight_draw_count(self, size: int) -> int:
        """Standard-normal draws one trial's weight perturbation consumes."""
        return sum(model.weight_draw_count(size) for model in self.models)

    def apply_weight_noise(self, weights: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Apply every model's weight perturbation from a fused draw block.

        ``weights`` is a ``(trials, *shape)`` stack and ``z`` holds each
        trial's pre-drawn standard normals for this layer, consumed in model
        order -- the same stream positions :meth:`perturb_weights` would use,
        so results are bit-identical to the sequential path.
        """
        size = int(np.prod(weights.shape[1:], dtype=int))
        offset = 0
        for model in self.models:
            count = model.weight_draw_count(size)
            if count:
                weights = model.apply_weight_noise(weights, z[:, offset : offset + count])
                offset += count
            # Zero-draw built-ins leave weights untouched by construction.
        return weights

    def static_loss_db(self) -> float:
        """Deterministic link penalty: what the *nominal* receiver already pays."""
        return sum(model.static_loss_db() for model in self.models)

    def sample_loss_db(self, rng: np.random.Generator) -> float:
        """Per-trial link penalty (always consumed before the forward pass)."""
        return sum(model.sample_loss_db(rng) for model in self.models)

    def loss_draw_count(self) -> int:
        """Standard-normal draws one trial's link-loss sampling consumes."""
        return sum(model.loss_draw_count() for model in self.models)

    def sample_loss_db_batch(self, z: np.ndarray) -> np.ndarray:
        """All trials' link penalties from a ``(trials, loss_draw_count)`` block.

        Each model consumes its slice in model order -- the same layout the
        sequential :meth:`sample_loss_db` calls would walk -- and deterministic
        models contribute their static penalty, so one vectorized pass replaces
        a Python call per (trial, model).
        """
        totals = np.zeros(z.shape[0])
        offset = 0
        for model in self.models:
            count = model.loss_draw_count()
            if count:
                totals += model.loss_db_from_draws(z[:, offset : offset + count])
                offset += count
            else:
                static = model.static_loss_db()
                if static:
                    totals += static
        return totals

    def scaled(self, factor: float) -> "NoiseSpec":
        """Every model's magnitudes scaled by ``factor`` (robustness sweeps)."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor!r}")
        return NoiseSpec(tuple(model.scaled(factor) for model in self.models))

    def __bool__(self) -> bool:
        return bool(self.models)


#: Model types whose per-trial stream consumption is statically known, making
#: them eligible for fused sampling (one standard-normal block per trial).
_FUSED_DRAW_TYPES = (
    VariationModel,
    WeightEncodingError,
    PhaseError,
    Crosstalk,
    LinkLossDrift,
)

#: The no-noise spec (useful as the clean hardware reference).
IDEAL = NoiseSpec()


def standard_noise(
    weight_sigma: float = 0.02,
    phase_sigma_rad: float = 0.02,
    crosstalk_db: float = 27.0,
    loss_mean_db: float = 0.5,
    loss_sigma_db: float = 0.25,
) -> NoiseSpec:
    """A representative silicon-photonics corner: encoding + phase + crosstalk + drift."""
    return NoiseSpec(
        (
            WeightEncodingError(sigma=weight_sigma),
            PhaseError(sigma_rad=phase_sigma_rad),
            Crosstalk.from_db(crosstalk_db),
            LinkLossDrift(mean_db=loss_mean_db, sigma_db=loss_sigma_db),
        )
    )
