"""Noisy ONN inference and accuracy/error metrics.

:func:`noisy_forward` runs a purely functional forward pass of an
:class:`~repro.onn.layers.Sequential` model under a
:class:`~repro.variation.models.NoiseSpec`: operands are snapped to the
receiver-limited DAC/ADC grid (:func:`~repro.onn.quantize.receiver_limited_bits`
caps the nominal converter resolution at the link's SNR-derived effective
bits), weights are perturbed per weighted layer, and activations pick up
crosstalk after every analog matmul.  The shared model object is never mutated
-- perturbed weights live on shallow per-layer clones -- so concurrent trials
on the thread backend are safe.

The accuracy metric is *fidelity to the ideal hardware*: agreement of the noisy
argmax with the argmax of the noise-free (but still quantized) forward pass.
A zero-magnitude noise spec therefore scores exactly 1.0, and the metric
isolates what variation costs on top of quantization.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import digest, memoized_fingerprint
from repro.onn.layers import Module, Sequential, _as_float, _match_dtype, compute_dtype
from repro.onn.quantize import (
    quantize_uniform,
    quantize_uniform_batch,
    receiver_limited_bits,
)
from repro.variation.models import IDEAL, NoiseSpec
from repro.variation.stages import stage

#: RNG used for noise-free reference passes (an empty spec draws nothing).
_NULL_RNG = np.random.default_rng(0)


def _holds_modules(value: object) -> bool:
    if isinstance(value, Module):
        return True
    if isinstance(value, (list, tuple)):
        return any(isinstance(item, Module) for item in value)
    return False


def model_fingerprint(model: Module) -> str:
    """Content digest of a model: every layer's class and functional state.

    Hashes each module's full ``__dict__`` (weights, masks, bitwidths, but also
    structural knobs like pool kernel sizes, conv strides and norm scales), so
    two models that forward differently never share a digest.  Sub-modules are
    excluded from the per-layer state because :meth:`Module.modules` already
    walks them.  Memoized on the model object; like workloads, models handed to
    the evaluation machinery are treated as immutable (mutate a copy between
    runs).
    """

    def compute() -> str:
        parts = []
        for module in model.modules():
            state = tuple(
                (name, value)
                for name, value in sorted(vars(module).items())
                if not name.startswith("_repro_") and not _holds_modules(value)
            )
            parts.append((type(module).__name__, state))
        return digest("onn-model", tuple(parts))

    return memoized_fingerprint(model, compute)


def _forward_layers(model: Module) -> Tuple[Module, ...]:
    if isinstance(model, Sequential):
        return tuple(model.layers)
    return (model,)


def noisy_forward(
    model: Module,
    x: np.ndarray,
    spec: NoiseSpec,
    rng: Optional[np.random.Generator] = None,
    input_bits: int = 8,
    weight_bits: int = 8,
    output_bits: int = 8,
    effective_bits: Optional[float] = None,
) -> np.ndarray:
    """Forward ``x`` through ``model`` under device variation.

    ``input_bits``/``weight_bits``/``output_bits`` are the hardware DAC/ADC
    resolutions (typically ``arch.config.*_bits``); each is capped at the
    link's ``effective_bits`` before quantization.  ``rng`` supplies the
    trial's random stream (required only when ``spec`` has stochastic models).
    """
    rng = rng if rng is not None else _NULL_RNG
    in_bits = receiver_limited_bits(input_bits, effective_bits)
    w_bits = receiver_limited_bits(weight_bits, effective_bits)
    out_bits = receiver_limited_bits(output_bits, effective_bits)

    x = quantize_uniform(np.asarray(x, dtype=float), in_bits)
    for layer in _forward_layers(model):
        weight = getattr(layer, "weight", None)
        if weight is None:
            x = layer.forward(x)
            continue
        perturbed = spec.perturb_weights(
            layer.effective_weight() if hasattr(layer, "effective_weight") else weight,
            rng,
        )
        mask = getattr(layer, "pruning_mask", None)
        if mask is not None:
            # Pruned devices are powered off: they stay exactly zero under noise.
            perturbed = np.where(mask, perturbed, 0.0)
        clone = copy.copy(layer)
        clone.weight = quantize_uniform(perturbed, w_bits)
        clone.pruning_mask = None  # already applied above
        x = clone.forward(x)
        x = spec.perturb_activations(x, rng)
        x = quantize_uniform(x, out_bits)
    return x


def _weighted_layer_sizes(model: Module) -> List[int]:
    """Weight element counts of the layers the noisy forward perturbs, in order."""
    sizes = []
    for layer in _forward_layers(model):
        weight = getattr(layer, "weight", None)
        if weight is not None:
            sizes.append(int(np.asarray(weight).size))
    return sizes


def _fused_draws(
    spec: NoiseSpec,
    rngs: Sequence[np.random.Generator],
    sizes: Sequence[int],
) -> Optional[List[np.ndarray]]:
    """Pre-draw every trial's weight noise as one standard-normal block.

    One ``standard_normal(total)`` call per trial replaces one ``normal`` call
    per (trial, layer, stochastic model); the block is sliced back per layer
    in draw order, so each trial's stream is consumed bit-identically to the
    sequential path.  Returns ``None`` when the spec's draw layout is unknown
    (custom models) or there is nothing to draw.
    """
    if not spec.supports_fused_sampling():
        return None
    counts = [spec.weight_draw_count(size) for size in sizes]
    total = sum(counts)
    if total == 0:
        return None
    z = np.empty((len(rngs), total))
    for row, rng in enumerate(rngs):
        rng.standard_normal(out=z[row])
    blocks: List[np.ndarray] = []
    offset = 0
    for count in counts:
        blocks.append(z[:, offset : offset + count])
        offset += count
    return blocks


def _sliced_draw_blocks(
    spec: NoiseSpec, weight_draws: np.ndarray, sizes: Sequence[int]
) -> List[np.ndarray]:
    """Slice a pre-generated ``(trials, total_draws)`` slab into per-layer blocks.

    The layout matches :func:`_fused_draws` (draw order per weighted layer), so
    the counter-based fast path consumes the same block shapes the per-trial
    streams would.
    """
    counts = [spec.weight_draw_count(size) for size in sizes]
    if sum(counts) != weight_draws.shape[1]:
        raise ValueError(
            f"weight draw slab has {weight_draws.shape[1]} columns, spec "
            f"layout needs {sum(counts)}"
        )
    blocks: List[np.ndarray] = []
    offset = 0
    for count in counts:
        blocks.append(weight_draws[:, offset : offset + count])
        offset += count
    return blocks


def _forward_trial_group(
    model: Module,
    x: np.ndarray,
    spec: NoiseSpec,
    rngs: Optional[Sequence[np.random.Generator]],
    in_bits: int,
    w_bits: int,
    out_bits: int,
    weight_draws: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One batched noisy forward for trials sharing resolved DAC/ADC bits.

    ``weight_draws``, when given, is this group's pre-generated
    ``(trials, total_draws)`` standard-normal slab (the ``REPRO_RNG=philox``
    fast path): the per-trial streams in ``rngs`` are then never consumed for
    weight noise, only the slab's per-layer slices.
    """
    dtype = compute_dtype()
    with stage("quantize"):
        xq = quantize_uniform(x, in_bits)
    xq = _match_dtype(xq, dtype)
    if weight_draws is not None:
        trials = int(weight_draws.shape[0])
        weight_draws = _match_dtype(weight_draws, dtype)
        fused: Optional[List[np.ndarray]] = _sliced_draw_blocks(
            spec, weight_draws, _weighted_layer_sizes(model)
        )
    else:
        assert rngs is not None
        trials = len(rngs)
        with stage("rng"):
            fused = _fused_draws(spec, rngs, _weighted_layer_sizes(model))
    batch = np.broadcast_to(xq, (trials,) + xq.shape)
    weighted_index = 0
    for layer in _forward_layers(model):
        weight = getattr(layer, "weight", None)
        if weight is None:
            with stage("forward"):
                batch = layer.forward_batch(batch)
            continue
        base = layer.effective_weight() if hasattr(layer, "effective_weight") else weight
        base = _match_dtype(base, dtype)
        with stage("forward"):
            if fused is not None:
                block = _match_dtype(fused[weighted_index], dtype)
                stacked = np.broadcast_to(base, (trials,) + base.shape)
                perturbed = spec.apply_weight_noise(stacked, block)
            else:
                perturbed = spec.perturb_weights_batch(base, rngs)
        weighted_index += 1
        mask = getattr(layer, "pruning_mask", None)
        if mask is not None:
            # Pruned devices are powered off: they stay exactly zero under noise.
            perturbed = np.where(mask, perturbed, 0.0)
        with stage("quantize"):
            perturbed = quantize_uniform_batch(perturbed, w_bits)
        with stage("forward"):
            batch = layer.forward_batch(batch, weight=perturbed)
            batch = spec.perturb_activations_batch(batch, rngs)
        with stage("quantize"):
            batch = quantize_uniform_batch(batch, out_bits)
    return _as_float(batch)


def noisy_forward_batch(
    model: Module,
    x: np.ndarray,
    spec: NoiseSpec,
    rngs: Optional[Sequence[np.random.Generator]],
    input_bits: int = 8,
    weight_bits: int = 8,
    output_bits: int = 8,
    effective_bits: Optional[Sequence[Optional[float]]] = None,
    weight_draws: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Trial-batched :func:`noisy_forward`: one stacked forward per layer.

    ``rngs[i]`` is trial ``i``'s random stream (typically
    :func:`~repro.variation.sampler.trial_rng`), consumed in exactly the order
    the serial path would: per weighted layer, in layer order.  A caller that
    draws the per-trial link loss first (as :func:`run_monte_carlo` does) keeps
    the streams bit-identical to the per-trial loop.

    ``weight_draws`` is the counter-based alternative (``REPRO_RNG=philox``):
    a pre-generated ``(trials, total_draws)`` standard-normal slab whose row
    ``i`` is trial ``i``'s fused block.  It requires a spec with a statically
    known draw layout (:meth:`NoiseSpec.supports_fused_sampling`); ``rngs``
    may then be ``None``.

    ``effective_bits`` gives each trial's link-limited resolution; trials are
    grouped by their *resolved* ``(input, weight, output)`` bit tuple -- the
    quantization grids are integers, so drifted trials collapse into a handful
    of groups -- and each group runs one batched forward.  Returns a
    ``(trials, *output_shape)`` stack, in trial order.
    """
    if rngs is not None:
        trials = len(rngs)
    elif weight_draws is not None:
        trials = int(weight_draws.shape[0])
    else:
        raise ValueError("noisy_forward_batch needs rngs or a weight_draws slab")
    if weight_draws is not None:
        if not spec.supports_fused_sampling():
            raise ValueError(
                "weight_draws requires a spec with a statically known draw "
                "layout (supports_fused_sampling)"
            )
        if weight_draws.shape[0] != trials:
            raise ValueError(
                f"weight_draws has {weight_draws.shape[0]} rows for {trials} trials"
            )
    if trials < 1:
        raise ValueError("noisy_forward_batch needs at least one trial")
    x = _as_float(x)
    if effective_bits is None:
        effective = [None] * trials
    else:
        effective = list(effective_bits)
        if len(effective) != trials:
            raise ValueError(
                f"effective_bits has {len(effective)} entries for {trials} trials"
            )
    groups: Dict[Tuple[int, int, int], List[int]] = {}
    for idx, eff in enumerate(effective):
        resolved = (
            receiver_limited_bits(input_bits, eff),
            receiver_limited_bits(weight_bits, eff),
            receiver_limited_bits(output_bits, eff),
        )
        groups.setdefault(resolved, []).append(idx)
    outputs: Optional[np.ndarray] = None
    for (in_bits, w_bits, out_bits), indices in groups.items():
        group = _forward_trial_group(
            model,
            x,
            spec,
            None if rngs is None else [rngs[i] for i in indices],
            in_bits,
            w_bits,
            out_bits,
            weight_draws=None if weight_draws is None else weight_draws[indices],
        )
        if outputs is None:
            outputs = np.empty((trials,) + group.shape[1:], dtype=float)
        outputs[indices] = group
    assert outputs is not None
    return outputs


def reference_forward(
    model: Module,
    x: np.ndarray,
    input_bits: int = 8,
    weight_bits: int = 8,
    output_bits: int = 8,
    effective_bits: Optional[float] = None,
) -> np.ndarray:
    """The noise-free hardware baseline: quantized forward, no variation."""
    return noisy_forward(
        model,
        x,
        IDEAL,
        input_bits=input_bits,
        weight_bits=weight_bits,
        output_bits=output_bits,
        effective_bits=effective_bits,
    )


def classification_agreement(outputs: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of samples whose argmax matches the reference argmax."""
    outputs = np.atleast_2d(np.asarray(outputs, dtype=float))
    reference = np.atleast_2d(np.asarray(reference, dtype=float))
    if outputs.shape != reference.shape:
        raise ValueError(
            f"output shape {outputs.shape} does not match reference {reference.shape}"
        )
    return float(np.mean(outputs.argmax(axis=-1) == reference.argmax(axis=-1)))


def output_rmse(outputs: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square deviation of the noisy outputs from the reference."""
    outputs = np.asarray(outputs, dtype=float)
    reference = np.asarray(reference, dtype=float)
    return float(np.sqrt(np.mean((outputs - reference) ** 2)))


def classification_agreement_batch(
    outputs: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Per-trial :func:`classification_agreement` over a ``(trials, ...)`` stack.

    One batched argmax/compare replaces the per-trial metric loop; each trial's
    value is the same sample count ratio the scalar function returns.  Float
    inputs are used in place (no float64 round-trip copies on the hot path).
    """
    outputs = _as_float(outputs)
    reference = _as_float(reference)
    if outputs.shape[1:] != reference.shape:
        raise ValueError(
            f"output shape {outputs.shape[1:]} does not match reference "
            f"{reference.shape}"
        )
    trials = outputs.shape[0]
    reference = np.atleast_2d(reference)
    stacked = outputs.reshape((trials,) + reference.shape)
    matches = stacked.argmax(axis=-1) == reference.argmax(axis=-1)
    return matches.mean(axis=-1)


def output_rmse_batch(outputs: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Per-trial :func:`output_rmse` over a ``(trials, ...)`` stack."""
    outputs = _as_float(outputs)
    reference = _as_float(reference)
    deltas = (outputs - reference) ** 2
    return np.sqrt(deltas.mean(axis=tuple(range(1, deltas.ndim))))


@dataclass(frozen=True)
class TrialResult:
    """Picklable outcome of one Monte Carlo trial."""

    trial: int
    accuracy: float
    rmse: float
    effective_bits: float
    extra_loss_db: float


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregated Monte Carlo accuracy under a noise spec.

    ``accuracy_*`` statistics are over the per-trial classification agreement
    with the noise-free quantized reference; ``effective_bits_nominal`` is the
    receiver precision at the spec's deterministic (static) link penalty, and
    ``effective_bits_mean`` averages the per-trial drifted values.  All fields
    are finite by construction (degenerate links floor at 1 resolved bit), so
    reports are safe to feed to :func:`repro.explore.dse.pareto_front`.
    """

    trials: int
    seed: int
    accuracy_mean: float
    accuracy_std: float
    accuracy_min: float
    accuracy_max: float
    rmse_mean: float
    rmse_max: float
    effective_bits_nominal: float
    effective_bits_mean: float
    accuracies: Tuple[float, ...] = ()

    @property
    def error_rate(self) -> float:
        """The minimize-me complement of the mean accuracy (a DSE objective)."""
        return 1.0 - self.accuracy_mean


def aggregate_trials(
    results: Tuple[TrialResult, ...],
    seed: int,
    effective_bits_nominal: float,
) -> AccuracyReport:
    """Fold per-trial results (in trial order) into an :class:`AccuracyReport`."""
    if not results:
        raise ValueError("cannot aggregate zero Monte Carlo trials")
    accuracies = np.array([r.accuracy for r in results])
    rmses = np.array([r.rmse for r in results])
    eff_bits = np.array([r.effective_bits for r in results])
    return AccuracyReport(
        trials=len(results),
        seed=seed,
        accuracy_mean=float(accuracies.mean()),
        accuracy_std=float(accuracies.std()),
        accuracy_min=float(accuracies.min()),
        accuracy_max=float(accuracies.max()),
        rmse_mean=float(rmses.mean()),
        rmse_max=float(rmses.max()),
        effective_bits_nominal=float(effective_bits_nominal),
        effective_bits_mean=float(eff_bits.mean()),
        accuracies=tuple(float(a) for a in accuracies),
    )
