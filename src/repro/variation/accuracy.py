"""Noisy ONN inference and accuracy/error metrics.

:func:`noisy_forward` runs a purely functional forward pass of an
:class:`~repro.onn.layers.Sequential` model under a
:class:`~repro.variation.models.NoiseSpec`: operands are snapped to the
receiver-limited DAC/ADC grid (:func:`~repro.onn.quantize.receiver_limited_bits`
caps the nominal converter resolution at the link's SNR-derived effective
bits), weights are perturbed per weighted layer, and activations pick up
crosstalk after every analog matmul.  The shared model object is never mutated
-- perturbed weights live on shallow per-layer clones -- so concurrent trials
on the thread backend are safe.

The accuracy metric is *fidelity to the ideal hardware*: agreement of the noisy
argmax with the argmax of the noise-free (but still quantized) forward pass.
A zero-magnitude noise spec therefore scores exactly 1.0, and the metric
isolates what variation costs on top of quantization.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.cache import digest, memoized_fingerprint
from repro.onn.layers import Module, Sequential
from repro.onn.quantize import quantize_uniform, receiver_limited_bits
from repro.variation.models import IDEAL, NoiseSpec

#: RNG used for noise-free reference passes (an empty spec draws nothing).
_NULL_RNG = np.random.default_rng(0)


def _holds_modules(value: object) -> bool:
    if isinstance(value, Module):
        return True
    if isinstance(value, (list, tuple)):
        return any(isinstance(item, Module) for item in value)
    return False


def model_fingerprint(model: Module) -> str:
    """Content digest of a model: every layer's class and functional state.

    Hashes each module's full ``__dict__`` (weights, masks, bitwidths, but also
    structural knobs like pool kernel sizes, conv strides and norm scales), so
    two models that forward differently never share a digest.  Sub-modules are
    excluded from the per-layer state because :meth:`Module.modules` already
    walks them.  Memoized on the model object; like workloads, models handed to
    the evaluation machinery are treated as immutable (mutate a copy between
    runs).
    """

    def compute() -> str:
        parts = []
        for module in model.modules():
            state = tuple(
                (name, value)
                for name, value in sorted(vars(module).items())
                if not name.startswith("_repro_") and not _holds_modules(value)
            )
            parts.append((type(module).__name__, state))
        return digest("onn-model", tuple(parts))

    return memoized_fingerprint(model, compute)


def _forward_layers(model: Module) -> Tuple[Module, ...]:
    if isinstance(model, Sequential):
        return tuple(model.layers)
    return (model,)


def noisy_forward(
    model: Module,
    x: np.ndarray,
    spec: NoiseSpec,
    rng: Optional[np.random.Generator] = None,
    input_bits: int = 8,
    weight_bits: int = 8,
    output_bits: int = 8,
    effective_bits: Optional[float] = None,
) -> np.ndarray:
    """Forward ``x`` through ``model`` under device variation.

    ``input_bits``/``weight_bits``/``output_bits`` are the hardware DAC/ADC
    resolutions (typically ``arch.config.*_bits``); each is capped at the
    link's ``effective_bits`` before quantization.  ``rng`` supplies the
    trial's random stream (required only when ``spec`` has stochastic models).
    """
    rng = rng if rng is not None else _NULL_RNG
    in_bits = receiver_limited_bits(input_bits, effective_bits)
    w_bits = receiver_limited_bits(weight_bits, effective_bits)
    out_bits = receiver_limited_bits(output_bits, effective_bits)

    x = quantize_uniform(np.asarray(x, dtype=float), in_bits)
    for layer in _forward_layers(model):
        weight = getattr(layer, "weight", None)
        if weight is None:
            x = layer.forward(x)
            continue
        perturbed = spec.perturb_weights(
            layer.effective_weight() if hasattr(layer, "effective_weight") else weight,
            rng,
        )
        mask = getattr(layer, "pruning_mask", None)
        if mask is not None:
            # Pruned devices are powered off: they stay exactly zero under noise.
            perturbed = np.where(mask, perturbed, 0.0)
        clone = copy.copy(layer)
        clone.weight = quantize_uniform(perturbed, w_bits)
        clone.pruning_mask = None  # already applied above
        x = clone.forward(x)
        x = spec.perturb_activations(x, rng)
        x = quantize_uniform(x, out_bits)
    return x


def reference_forward(
    model: Module,
    x: np.ndarray,
    input_bits: int = 8,
    weight_bits: int = 8,
    output_bits: int = 8,
    effective_bits: Optional[float] = None,
) -> np.ndarray:
    """The noise-free hardware baseline: quantized forward, no variation."""
    return noisy_forward(
        model,
        x,
        IDEAL,
        input_bits=input_bits,
        weight_bits=weight_bits,
        output_bits=output_bits,
        effective_bits=effective_bits,
    )


def classification_agreement(outputs: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of samples whose argmax matches the reference argmax."""
    outputs = np.atleast_2d(np.asarray(outputs, dtype=float))
    reference = np.atleast_2d(np.asarray(reference, dtype=float))
    if outputs.shape != reference.shape:
        raise ValueError(
            f"output shape {outputs.shape} does not match reference {reference.shape}"
        )
    return float(np.mean(outputs.argmax(axis=-1) == reference.argmax(axis=-1)))


def output_rmse(outputs: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square deviation of the noisy outputs from the reference."""
    outputs = np.asarray(outputs, dtype=float)
    reference = np.asarray(reference, dtype=float)
    return float(np.sqrt(np.mean((outputs - reference) ** 2)))


@dataclass(frozen=True)
class TrialResult:
    """Picklable outcome of one Monte Carlo trial."""

    trial: int
    accuracy: float
    rmse: float
    effective_bits: float
    extra_loss_db: float


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregated Monte Carlo accuracy under a noise spec.

    ``accuracy_*`` statistics are over the per-trial classification agreement
    with the noise-free quantized reference; ``effective_bits_nominal`` is the
    receiver precision at the spec's deterministic (static) link penalty, and
    ``effective_bits_mean`` averages the per-trial drifted values.  All fields
    are finite by construction (degenerate links floor at 1 resolved bit), so
    reports are safe to feed to :func:`repro.explore.dse.pareto_front`.
    """

    trials: int
    seed: int
    accuracy_mean: float
    accuracy_std: float
    accuracy_min: float
    accuracy_max: float
    rmse_mean: float
    rmse_max: float
    effective_bits_nominal: float
    effective_bits_mean: float
    accuracies: Tuple[float, ...] = ()

    @property
    def error_rate(self) -> float:
        """The minimize-me complement of the mean accuracy (a DSE objective)."""
        return 1.0 - self.accuracy_mean


def aggregate_trials(
    results: Tuple[TrialResult, ...],
    seed: int,
    effective_bits_nominal: float,
) -> AccuracyReport:
    """Fold per-trial results (in trial order) into an :class:`AccuracyReport`."""
    if not results:
        raise ValueError("cannot aggregate zero Monte Carlo trials")
    accuracies = np.array([r.accuracy for r in results])
    rmses = np.array([r.rmse for r in results])
    eff_bits = np.array([r.effective_bits for r in results])
    return AccuracyReport(
        trials=len(results),
        seed=seed,
        accuracy_mean=float(accuracies.mean()),
        accuracy_std=float(accuracies.std()),
        accuracy_min=float(accuracies.min()),
        accuracy_max=float(accuracies.max()),
        rmse_mean=float(rmses.mean()),
        rmse_max=float(rmses.max()),
        effective_bits_nominal=float(effective_bits_nominal),
        effective_bits_mean=float(eff_bits.mean()),
        accuracies=tuple(float(a) for a in accuracies),
    )
