"""Deterministic Monte Carlo trial seeding, in two RNG modes.

**Reference mode (``seedseq``, the default).**  Every trial's random stream is
a pure function of ``(scenario_seed, trial index)``: the trial's
:class:`numpy.random.SeedSequence` uses the scenario seed as entropy and the
trial index as its spawn key.  Any worker -- the local process, a thread, or a
process-pool worker that received nothing but the two integers -- reconstructs
bit-identical streams, which is what makes Monte Carlo accuracy tables
byte-identical across the ``repro.exec`` backends.  This deliberately avoids
``SeedSequence.spawn()``: spawning is stateful (the parent's
``n_children_spawned`` advances), so two backends that partition the trial
list differently would derive different children.  Keying the spawn path by
the trial index directly has no such ordering dependence.

**Throughput mode (``REPRO_RNG=philox``).**  The seed contract's per-trial
SeedSequence hashing and PCG64 state derivation dominate large studies (both
the loop and vectorized paths pay them).  Philox is *counter-based*: a stream
is a pure function of its 128-bit key, so

- :func:`philox_fused_normals` derives **one** keyed stream per scenario seed
  and generates every trial's fused standard-normal block in a single
  ``(trials, draws)`` call -- trial ``i`` owns row ``i``, a pure function of
  ``(seed, i, draws)`` independent of how the trial axis is later chunked;
- :func:`philox_trial_rng` (the per-trial fallback for the loop forward path
  and for custom noise models) keys an independent Philox stream directly by
  ``(seed, trial)`` -- no hashing, no state cache.

Philox mode is deterministic and backend-invariant for a fixed seed, but its
streams differ from the SeedSequence contract, so committed reference tables
are only reproduced in the default mode (the same pattern as
``REPRO_FORWARD=loop`` vs the vectorized forward).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.core.knobs import raw_value as _knob_raw

#: Environment knob selecting the trial RNG derivation: ``seedseq`` (default,
#: the bit-exact per-trial SeedSequence contract) or ``philox`` (counter-based
#: fused generation, the throughput mode).  Declared in :mod:`repro.core.knobs`.
RNG_MODE_ENV = "REPRO_RNG"

_RNG_MODES = ("seedseq", "philox")


def rng_mode() -> str:
    """The active trial-RNG mode: ``"seedseq"`` (default) or ``"philox"``.

    Read from ``$REPRO_RNG`` on every call so tests and benchmarks can flip the
    mode without re-importing; unknown values fail loudly rather than silently
    sampling from the wrong contract.
    """
    mode = (_knob_raw(RNG_MODE_ENV) or "seedseq").strip().lower()
    if mode not in _RNG_MODES:
        raise ValueError(
            f"{RNG_MODE_ENV} must be one of {', '.join(_RNG_MODES)}, got {mode!r}"
        )
    return mode


def trial_seed_sequence(base_seed: int, trial: int) -> np.random.SeedSequence:
    """The canonical seed sequence of one Monte Carlo trial."""
    if trial < 0:
        raise ValueError(f"trial index must be non-negative, got {trial}")
    return np.random.SeedSequence(entropy=int(base_seed), spawn_key=(int(trial),))


#: Memoized PCG64 start states: the state is a pure function of (seed, trial),
#: and hashing a SeedSequence into a bit-generator state costs more than
#: restoring it, so studies that revisit the same trial seeds (e.g. a noise
#: sweep at fixed scenario seed) skip the re-derivation.  Insertion-ordered and
#: lock-protected so the thread backend can hammer it concurrently: the bound
#: is exact (never exceeded, even under races) and eviction is deterministic
#: FIFO -- the oldest insertion goes first, regardless of thread interleaving.
_STATE_CACHE: "OrderedDict[Tuple[int, int], dict]" = OrderedDict()
_STATE_CACHE_MAX = 65536
_STATE_LOCK = threading.Lock()


def trial_rng(base_seed: int, trial: int) -> np.random.Generator:
    """A fresh generator for one trial, identical no matter where it is built."""
    key = (int(base_seed), int(trial))
    with _STATE_LOCK:
        state = _STATE_CACHE.get(key)
    if state is None:
        bit_generator = np.random.PCG64(trial_seed_sequence(base_seed, trial))
        with _STATE_LOCK:
            if key not in _STATE_CACHE:
                while len(_STATE_CACHE) >= _STATE_CACHE_MAX:
                    _STATE_CACHE.popitem(last=False)
                _STATE_CACHE[key] = bit_generator.state
    else:
        bit_generator = np.random.PCG64(0)
        bit_generator.state = state
    return np.random.Generator(bit_generator)


def trial_rngs(base_seed: int, num_trials: int) -> List[np.random.Generator]:
    """Independent per-trial generators for ``num_trials`` trials."""
    if num_trials < 1:
        raise ValueError(f"num_trials must be positive, got {num_trials}")
    return [trial_rng(base_seed, trial) for trial in range(num_trials)]


# -- counter-based (Philox) mode -------------------------------------------------------


@lru_cache(maxsize=1024)
def _philox_keys(base_seed: int) -> Tuple[int, int, int, int]:
    """Four 64-bit key words derived once per scenario seed.

    Words 0-1 key the study-wide fused stream (:func:`philox_fused_normals`);
    words 2-3 are the base of the per-trial keys (:func:`philox_trial_rng`).
    Deriving through a SeedSequence keeps low-entropy seeds (0, 1, 2, ...)
    well-mixed; the two key domains never collide because Philox streams with
    different keys are independent by construction.
    """
    state = np.random.SeedSequence(entropy=int(base_seed)).generate_state(4, np.uint64)
    return tuple(int(word) for word in state)


@lru_cache(maxsize=8)
def _fused_normals_cached(
    base_seed: int, trials: int, draws: int, dtype_str: str
) -> np.ndarray:
    keys = _philox_keys(base_seed)
    key = np.array(keys[:2], dtype=np.uint64)
    generator = np.random.Generator(np.random.Philox(key=key))
    slab = generator.standard_normal((trials, draws), dtype=np.dtype(dtype_str))
    # Shared across callers (noise-scale sweeps reuse one slab): read-only so
    # an accidental in-place write fails loudly instead of corrupting trials.
    slab.setflags(write=False)
    return slab


def philox_fused_normals(
    base_seed: int, trials: int, draws: int, dtype: type = np.float64
) -> np.ndarray:
    """All trials' fused standard-normal blocks as one ``(trials, draws)`` call.

    Row ``i`` (variates ``[i * draws, (i + 1) * draws)`` of the study's keyed
    Philox stream) is trial ``i``'s block -- a pure function of
    ``(base_seed, i, draws)``, so any chunking of the trial axis slices the
    same rows.  The caller generates the whole matrix once per study and ships
    row slices to worker chunks.

    Because the slab is a pure function of ``(base_seed, trials, draws,
    dtype)``, it is memoized (small LRU): a noise-magnitude sweep at a fixed
    scenario seed draws its standard normals **once** and rescales -- the
    normals themselves are scale-independent.  The returned array is read-only
    and shared between callers; copy before mutating.

    ``dtype`` may be ``np.float32`` (the ``REPRO_DTYPE=float32`` path):
    generation is then natively single-precision -- fewer raw Philox words and
    no post-hoc cast -- at the cost of a different (but equally valid) draw
    sequence than the float64 slab, which is why the engine keys cached
    studies by dtype mode as well.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if draws < 0:
        raise ValueError(f"draws must be non-negative, got {draws}")
    return _fused_normals_cached(
        int(base_seed), int(trials), int(draws), np.dtype(dtype).str
    )


def philox_trial_rng(base_seed: int, trial: int) -> np.random.Generator:
    """A counter-keyed per-trial generator: cheap, cache-free construction.

    Used where philox mode still needs a stream object per trial (the legacy
    loop forward path, custom noise models outside the fused layout).  The key
    is ``(seed-derived base) xor trial``, so streams are independent across
    trials and deterministic no matter where they are built.
    """
    if trial < 0:
        raise ValueError(f"trial index must be non-negative, got {trial}")
    keys = _philox_keys(base_seed)
    mixed = (keys[3] ^ int(trial)) & 0xFFFFFFFFFFFFFFFF
    key = np.array([keys[2], mixed], dtype=np.uint64)
    return np.random.Generator(np.random.Philox(key=key))


def make_trial_rng(base_seed: int, trial: int, mode: str) -> np.random.Generator:
    """One trial's generator under the given RNG mode (``seedseq``/``philox``)."""
    if mode == "philox":
        return philox_trial_rng(base_seed, trial)
    if mode == "seedseq":
        return trial_rng(base_seed, trial)
    raise ValueError(f"unknown RNG mode {mode!r}")
