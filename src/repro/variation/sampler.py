"""Deterministic Monte Carlo trial seeding.

Every trial's random stream is a pure function of ``(scenario_seed, trial
index)``: the trial's :class:`numpy.random.SeedSequence` uses the scenario seed
as entropy and the trial index as its spawn key.  Any worker -- the local
process, a thread, or a process-pool worker that received nothing but the two
integers -- reconstructs bit-identical streams, which is what makes Monte Carlo
accuracy tables byte-identical across the ``repro.exec`` backends.

This deliberately avoids ``SeedSequence.spawn()``: spawning is stateful (the
parent's ``n_children_spawned`` advances), so two backends that partition the
trial list differently would derive different children.  Keying the spawn path
by the trial index directly has no such ordering dependence.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


def trial_seed_sequence(base_seed: int, trial: int) -> np.random.SeedSequence:
    """The canonical seed sequence of one Monte Carlo trial."""
    if trial < 0:
        raise ValueError(f"trial index must be non-negative, got {trial}")
    return np.random.SeedSequence(entropy=int(base_seed), spawn_key=(int(trial),))


#: Memoized PCG64 start states: the state is a pure function of (seed, trial),
#: and hashing a SeedSequence into a bit-generator state costs more than
#: restoring it, so studies that revisit the same trial seeds (e.g. a noise
#: sweep at fixed scenario seed) skip the re-derivation.  Bounded; once full,
#: new keys are derived fresh (never evicted mid-run -- determinism over reuse).
_STATE_CACHE: Dict[Tuple[int, int], dict] = {}
_STATE_CACHE_MAX = 65536


def trial_rng(base_seed: int, trial: int) -> np.random.Generator:
    """A fresh generator for one trial, identical no matter where it is built."""
    key = (int(base_seed), int(trial))
    state = _STATE_CACHE.get(key)
    if state is None:
        bit_generator = np.random.PCG64(trial_seed_sequence(base_seed, trial))
        if len(_STATE_CACHE) < _STATE_CACHE_MAX:
            _STATE_CACHE[key] = bit_generator.state
    else:
        bit_generator = np.random.PCG64(0)
        bit_generator.state = state
    return np.random.Generator(bit_generator)


def trial_rngs(base_seed: int, num_trials: int) -> List[np.random.Generator]:
    """Independent per-trial generators for ``num_trials`` trials."""
    if num_trials < 1:
        raise ValueError(f"num_trials must be positive, got {num_trials}")
    return [trial_rng(base_seed, trial) for trial in range(num_trials)]
