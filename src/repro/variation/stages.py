"""Stage-level wall-clock attribution for the Monte Carlo hot path.

The ``repro bench`` harness needs to know *where* a study's time goes -- random
number generation, the stacked forwards, quantization, metrics -- so each PR's
``BENCH_*.json`` records where the next ceiling is.  This module is the
variation-pipeline analogue of :func:`repro.core.engine.observe_passes`: a
registered observer receives ``(stage_name, seconds)`` for every instrumented
block, and when no observer is registered the :func:`stage` context manager
short-circuits to (near) zero overhead, so production runs pay nothing.

Stages are coarse by design -- chunk-level and layer-level blocks, not
per-element timers -- and observers run on whichever thread executed the block
(the thread backend times concurrently), so observers must be thread-safe;
:class:`StageAccumulator` is the lock-protected default collector.  Timings
from process-backend workers stay in the worker (the bench harness times
scenarios on the in-process serial backend, where attribution is complete).
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Dict, Iterator, List

#: The stage names the variation pipeline attributes time to.  ``dispatch``
#: is the execution layer's own share: backend wall-clock not attributable to
#: any worker-reported compute stage (pool spin-up, pickling, IPC, idle gaps).
STAGE_NAMES = ("rng", "forward", "quantize", "metrics", "dispatch")

#: Registered stage observers.  Mutated only under the lock: concurrent
#: ``observe_stages`` scopes (e.g. thread-backend benchmarks) would otherwise
#: race ``append``/``remove`` and could drop or double-register a callback.
_OBSERVERS: List[Callable[[str, float], None]] = []
_OBSERVERS_LOCK = threading.Lock()


def stages_active() -> bool:
    """Whether any stage observer is registered (the fast-path guard)."""
    return bool(_OBSERVERS)


@contextlib.contextmanager
def observe_stages(callback: Callable[[str, float], None]) -> Iterator[None]:
    """Register ``callback(stage, seconds)`` for every timed block in scope."""
    with _OBSERVERS_LOCK:
        _OBSERVERS.append(callback)
    try:
        yield
    finally:
        with _OBSERVERS_LOCK:
            _OBSERVERS.remove(callback)


def emit(name: str, seconds: float) -> None:
    """Report an externally measured stage duration to the observers.

    The re-entry point for timings that crossed a process or host boundary:
    process-pool chunks and cluster workers accumulate their own ``stage``
    blocks and ship the totals home, where the parent emits them into its
    observers so ``observe_stages`` sees one complete attribution regardless
    of backend.
    """
    if not _OBSERVERS:
        return
    for callback in list(_OBSERVERS):
        callback(name, seconds)


def emit_totals(totals: Dict[str, float]) -> None:
    """Emit a ``{stage: seconds}`` map (a shipped accumulator snapshot)."""
    for name, seconds in totals.items():
        emit(name, seconds)


@contextlib.contextmanager
def stage(name: str) -> Iterator[None]:
    """Time the enclosed block and report it to the registered observers."""
    if not _OBSERVERS:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        for callback in list(_OBSERVERS):
            callback(name, elapsed)


class StageAccumulator:
    """Thread-safe per-stage totals: the default ``observe_stages`` collector."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: Dict[str, float] = {}

    def __call__(self, name: str, seconds: float) -> None:
        with self._lock:
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def reset(self) -> None:
        with self._lock:
            self._seconds.clear()

    def totals(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._seconds)
