"""Monte Carlo orchestration: independent trials fanned over ``repro.exec``.

One :class:`AccuracyRequest` describes an entire study -- the model, the
evaluation inputs, the :class:`~repro.variation.models.NoiseSpec`, the trial
count and the scenario seed, plus (execution detail, excluded from the request
fingerprint) which execution backend runs the trials.  :func:`run_monte_carlo`
computes the noise-free reference once, ships a picklable
:class:`_TrialContext` to the backend, maps the trial indices, and folds the
per-trial results in trial order -- so serial, thread and process runs produce
bit-identical :class:`~repro.variation.accuracy.AccuracyReport` records.

:func:`evaluate_accuracy` is the one-call entry point: it routes the request
through :meth:`repro.core.engine.EvaluationEngine.run_accuracy`, whose
``receiver_precision`` and ``mc_accuracy`` passes memoize the link-derived
effective bits and the whole Monte Carlo study on the engine cache.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache import digest, memoized_fingerprint
from repro.core.snr import SNRAnalyzer, SNRReport
from repro.exec import (
    ShmHandle,
    as_array,
    as_object,
    partition_indices,
    publish_array,
    publish_object,
    resolve_backend,
    shm_enabled,
    steal_partition,
)
from repro.onn.layers import (
    Module,
    compute_dtype,
    dtype_mode,
    forward_mode,
    pinned_modes,
    scratch_workspace,
)
from repro.variation.accuracy import (
    AccuracyReport,
    TrialResult,
    _weighted_layer_sizes,
    aggregate_trials,
    classification_agreement,
    classification_agreement_batch,
    model_fingerprint,
    noisy_forward,
    noisy_forward_batch,
    output_rmse,
    output_rmse_batch,
    reference_forward,
)
from repro.variation.models import NoiseSpec
from repro.variation.sampler import make_trial_rng, philox_fused_normals
from repro.variation.sampler import rng_mode as active_rng_mode
from repro.variation.stages import (
    StageAccumulator,
    emit,
    observe_stages,
    stage,
    stages_active,
)


#: Upper bound on trials per batched chunk: large enough to amortize the
#: per-chunk Python overhead, small enough that a chunk's stacked activations
#: (trials x samples x features doubles) stay within typical L2 working sets.
_TRIAL_CHUNK_CAP = 64


@dataclass(frozen=True)
class LinkOperatingPoint:
    """The receiver-facing summary of a link budget.

    Carries exactly what per-trial SNR re-evaluation needs -- the per-channel
    laser optical power, the nominal critical-path insertion loss, the receiver
    bandwidth and the receiver-chain noise model -- so trials can price extra
    drift loss without shipping whole architectures to worker processes.  The
    ``analyzer`` is the same one the engine's ``receiver_precision`` pass uses
    (``None`` means the default receiver), so nominal and per-trial effective
    bits come from one noise model.
    """

    optical_power_mw: float
    insertion_loss_db: float
    bandwidth_ghz: float
    analyzer: Optional[SNRAnalyzer] = None

    def snr(self, extra_loss_db: float = 0.0) -> SNRReport:
        received_mw = self.optical_power_mw * 10.0 ** (
            -(self.insertion_loss_db + extra_loss_db) / 10.0
        )
        analyzer = self.analyzer if self.analyzer is not None else SNRAnalyzer()
        return analyzer.analyze_received_power(received_mw, self.bandwidth_ghz)

    def effective_bits(self, extra_loss_db: float = 0.0) -> float:
        return self.snr(extra_loss_db).effective_bits

    def effective_bits_batch(self, extra_loss_db: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`effective_bits` over an array of drift losses.

        One numpy pass instead of a Python SNR evaluation per trial; used by
        the throughput Monte Carlo paths (the reference path keeps the scalar
        call so committed tables stay byte-stable).
        """
        losses = np.asarray(extra_loss_db, dtype=float)
        received_mw = self.optical_power_mw * 10.0 ** (
            -(self.insertion_loss_db + losses) / 10.0
        )
        analyzer = self.analyzer if self.analyzer is not None else SNRAnalyzer()
        return analyzer.effective_bits_for_power(received_mw, self.bandwidth_ghz)


@dataclass(frozen=True)
class AccuracyRequest:
    """A complete Monte Carlo accuracy study over one model and noise spec.

    ``backend``/``jobs`` choose how trials execute (any ``repro.exec`` spec);
    they are deliberately excluded from :meth:`fingerprint` because every
    backend produces bit-identical results -- two requests differing only in
    where they run share one cache entry.
    """

    model: Module
    inputs: np.ndarray
    noise: NoiseSpec = field(default_factory=NoiseSpec)
    trials: int = 32
    seed: int = 0
    #: What the noisy outputs are scored against: ``"quantized"`` (the
    #: noise-free forward on the same receiver-limited DAC/ADC grid -- isolates
    #: what *variation* costs) or ``"float"`` (the full-precision digital
    #: model -- measures quantization and variation together, the right
    #: baseline for precision sweeps).
    reference: str = "quantized"
    backend: object = None
    jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be positive, got {self.trials}")
        if self.reference not in ("quantized", "float"):
            raise ValueError(
                f"reference must be 'quantized' or 'float', got {self.reference!r}"
            )
        object.__setattr__(self, "inputs", np.asarray(self.inputs, dtype=float))

    def fingerprint(self) -> str:
        """Content address of the study (model + inputs + noise + trials + seed).

        Memoized on the request instance: the model digest is itself cached per
        model object, and hashing the inputs tensor once per request (instead
        of once per engine pass) keeps repeated evaluations off the hashing
        hot path.  Requests are treated as immutable once handed out.
        """
        return memoized_fingerprint(
            self,
            lambda: digest(
                "accuracy-request",
                model_fingerprint(self.model),
                self.inputs,
                self.noise,
                self.trials,
                self.seed,
                self.reference,
            ),
        )


@dataclass(frozen=True)
class _TrialContext:
    """Picklable task-invariant payload shipped once per worker chunk.

    Under task-shipping backends with ``REPRO_SHM=on``, the bulky fields
    (``model``, ``inputs``, ``reference``) are :class:`~repro.exec.ShmHandle`
    references to payloads published once per host instead of per-chunk
    pickled copies; workers materialize them via :func:`_materialized`
    (content-addressed, so repeated studies reuse the worker's cached
    attachment and unpickled model).
    """

    model: Union[Module, ShmHandle]
    inputs: Union[np.ndarray, ShmHandle]
    reference: Union[np.ndarray, ShmHandle]
    spec: NoiseSpec
    input_bits: int
    weight_bits: int
    output_bits: int
    seed: int
    link: Optional[LinkOperatingPoint]
    #: The RNG mode the study resolved at dispatch time.  Carried in the
    #: context (not re-read from the environment) so process-pool workers run
    #: the same mode as the parent regardless of env propagation.
    rng_mode: str = "seedseq"
    #: Forward-path and compute-precision modes, resolved at dispatch time for
    #: the same reason: a process (or cluster) worker pins these around the
    #: trial via :func:`repro.onn.layers.pinned_modes`, so flipping
    #: ``REPRO_FORWARD``/``REPRO_DTYPE`` after task encoding -- or running a
    #: worker under a different shell environment -- cannot change results.
    forward_mode: str = "vectorized"
    dtype_mode: str = "float64"


def _materialized(shared: _TrialContext) -> _TrialContext:
    """Resolve any shm handles in the context to live arrays/objects.

    A no-op for in-process backends (which never encode handles).  Worker-side
    resolution is cached by content digest, so every chunk of a study -- and
    every later study over the same model -- shares one attachment and one
    unpickled model per worker process.
    """
    if not (
        isinstance(shared.model, ShmHandle)
        or isinstance(shared.inputs, ShmHandle)
        or isinstance(shared.reference, ShmHandle)
    ):
        return shared
    return dataclasses.replace(
        shared,
        model=as_object(shared.model),
        inputs=as_array(shared.inputs),
        reference=as_array(shared.reference),
    )


def _shm_context(shared: _TrialContext) -> _TrialContext:
    """Publish the context's bulky fields and swap in their handles."""
    return dataclasses.replace(
        shared,
        model=publish_object(shared.model),
        inputs=publish_array(shared.inputs),
        reference=publish_array(shared.reference),
    )


@dataclass(frozen=True)
class _SlabRows:
    """A contiguous row window of the study-wide Philox slab, by construction.

    Ships the slab's *generation spec* instead of its bytes: the slab is a
    pure, memoized function of ``(seed, trials, draws, dtype)``
    (:func:`philox_fused_normals`), so a worker re-deriving it locally gets
    the identical read-only array without any transfer or content hashing --
    cheaper than shm even on the same host, and a ~100-byte task on the
    cluster wire.  The per-process memo means one generation per study per
    worker (fork-pool workers usually inherit the parent's already-warm memo).
    """

    seed: int
    trials: int
    draws: int
    dtype: str
    start: int
    stop: int

    def resolve(self) -> np.ndarray:
        slab = philox_fused_normals(
            self.seed, self.trials, self.draws, dtype=np.dtype(self.dtype).type
        )
        return slab[self.start : self.stop]


def _run_trial(shared: _TrialContext, trial: int) -> TrialResult:
    """One Monte Carlo trial: a pure function of the shared context and its index."""
    shared = _materialized(shared)
    with pinned_modes(shared.forward_mode, shared.dtype_mode):
        return _run_trial_pinned(shared, trial)


def _run_trial_pinned(shared: _TrialContext, trial: int) -> TrialResult:
    rng = make_trial_rng(shared.seed, trial, shared.rng_mode)
    extra_loss_db = shared.spec.sample_loss_db(rng)
    if shared.link is not None:
        effective_bits = shared.link.effective_bits(extra_loss_db)
    else:
        effective_bits = math.inf
    outputs = noisy_forward(
        shared.model,
        shared.inputs,
        shared.spec,
        rng,
        input_bits=shared.input_bits,
        weight_bits=shared.weight_bits,
        output_bits=shared.output_bits,
        effective_bits=effective_bits,
    )
    return TrialResult(
        trial=trial,
        accuracy=classification_agreement(outputs, shared.reference),
        rmse=output_rmse(outputs, shared.reference),
        effective_bits=float(effective_bits),
        extra_loss_db=float(extra_loss_db),
    )


def _run_trial_chunk(shared: _TrialContext, trials: List[int]) -> List[TrialResult]:
    """A contiguous chunk of trials as one batched forward.

    Each trial's RNG is rebuilt from ``(seed, trial index)`` and consumed in
    the serial order (link loss first, then per-layer weight noise), so the
    per-trial random draws are bit-identical to :func:`_run_trial` no matter
    how the trial axis was chunked.  The forwards themselves run stacked --
    one batched numpy pass per layer per resolved-bits group instead of
    ``len(trials)`` full model clones.
    """
    shared = _materialized(shared)
    with pinned_modes(shared.forward_mode, shared.dtype_mode):
        return _run_trial_chunk_pinned(shared, trials)


def _run_trial_chunk_pinned(
    shared: _TrialContext, trials: List[int]
) -> List[TrialResult]:
    with stage("rng"):
        rngs = [make_trial_rng(shared.seed, trial, shared.rng_mode) for trial in trials]
        losses = [shared.spec.sample_loss_db(rng) for rng in rngs]
    effective = _effective_bits_for(shared, losses)
    with scratch_workspace():
        outputs = noisy_forward_batch(
            shared.model,
            shared.inputs,
            shared.spec,
            rngs,
            input_bits=shared.input_bits,
            weight_bits=shared.weight_bits,
            output_bits=shared.output_bits,
            effective_bits=effective,
        )
    with stage("metrics"):
        accuracies = classification_agreement_batch(outputs, shared.reference)
        rmses = output_rmse_batch(outputs, shared.reference)
        return [
            TrialResult(
                trial=trial,
                accuracy=float(accuracies[i]),
                rmse=float(rmses[i]),
                effective_bits=float(effective[i]),
                extra_loss_db=float(losses[i]),
            )
            for i, trial in enumerate(trials)
        ]


def _effective_bits_for(
    shared: _TrialContext, losses: Sequence[float]
) -> List[float]:
    """Per-trial receiver precision for the chunk's sampled link penalties.

    Distinct loss values map to distinct SNR evaluations; drift-free specs
    collapse every trial onto one memoized receiver computation.
    """
    if shared.link is None:
        return [math.inf] * len(losses)
    by_loss: dict = {}
    effective = []
    for loss in losses:
        bits = by_loss.get(loss)
        if bits is None:
            bits = by_loss[loss] = shared.link.effective_bits(loss)
        effective.append(bits)
    return effective


def _run_philox_chunk(
    shared: _TrialContext, task: Tuple[List[int], Any]
) -> List[TrialResult]:
    """A chunk of trials driven by pre-generated counter-based draws.

    ``task`` is ``(trial_indices, draws)`` where ``draws`` holds each trial's
    row of the study-wide Philox slab: the leading ``loss_draw_count`` columns
    are the link-loss draws, the rest the fused weight-noise block.  Under
    shm transport ``draws`` is a :class:`_SlabRows` window into the published
    slab instead of a pickled row copy.  No per-trial generator is ever
    constructed -- the whole chunk consumes numpy slices of one matrix, which
    is what makes this mode's RNG cost nearly independent of the trial count.
    """
    shared = _materialized(shared)
    trials, draws = task
    if isinstance(draws, _SlabRows):
        with stage("rng"):
            task = (trials, draws.resolve())
    with pinned_modes(shared.forward_mode, shared.dtype_mode):
        return _run_philox_chunk_pinned(shared, task)


def _run_philox_chunk_pinned(
    shared: _TrialContext, task: Tuple[List[int], np.ndarray]
) -> List[TrialResult]:
    trials, draws = task
    loss_columns = shared.spec.loss_draw_count()
    with stage("rng"):
        loss_array = shared.spec.sample_loss_db_batch(draws[:, :loss_columns])
    losses = [float(v) for v in loss_array]
    if shared.link is None:
        effective: List[float] = [math.inf] * len(trials)
    else:
        effective = [float(v) for v in shared.link.effective_bits_batch(loss_array)]
    with scratch_workspace():
        outputs = noisy_forward_batch(
            shared.model,
            shared.inputs,
            shared.spec,
            rngs=None,
            input_bits=shared.input_bits,
            weight_bits=shared.weight_bits,
            output_bits=shared.output_bits,
            effective_bits=effective,
            weight_draws=draws[:, loss_columns:],
        )
    with stage("metrics"):
        accuracies = classification_agreement_batch(outputs, shared.reference)
        rmses = output_rmse_batch(outputs, shared.reference)
        return [
            TrialResult(
                trial=trial,
                accuracy=float(accuracies[i]),
                rmse=float(rmses[i]),
                effective_bits=float(effective[i]),
                extra_loss_db=float(losses[i]),
            )
            for i, trial in enumerate(trials)
        ]


def _observed_dispatch(dispatch: Callable[[], Any]) -> Any:
    """Run a backend dispatch, attributing unexplained wall-clock to ``dispatch``.

    With stage observers registered, the compute stages (rng/forward/quantize/
    metrics) reach the parent either inline (serial/threads) or as shipped
    worker totals (processes/cluster); whatever part of the dispatch wall-clock
    those stages do *not* explain is the execution layer's own overhead --
    pool spin-up, pickling, IPC, scheduling gaps -- and is emitted as the
    ``dispatch`` stage so bench records show exactly what a backend costs.
    """
    if not stages_active():
        return dispatch()
    attributed = StageAccumulator()
    start = time.perf_counter()
    with observe_stages(attributed):
        result = dispatch()
    overhead = (time.perf_counter() - start) - sum(attributed.totals().values())
    emit("dispatch", max(0.0, overhead))
    return result


def run_monte_carlo(
    request: AccuracyRequest,
    input_bits: int = 8,
    weight_bits: int = 8,
    output_bits: int = 8,
    link: Optional[LinkOperatingPoint] = None,
    nominal_snr: Optional[SNRReport] = None,
) -> AccuracyReport:
    """Execute the study and return the aggregated report.

    The reference (noise-free, quantized at the *static* link penalty) is
    computed once in the caller; trials then fan out over the request's
    execution backend and are aggregated in trial order, which keeps the
    report bit-identical no matter which backend ran the trials.  When the
    caller already holds the receiver's nominal :class:`SNRReport` (the
    engine's memoized ``receiver_precision`` pass), passing it as
    ``nominal_snr`` skips re-deriving it from the link.
    """
    static_loss_db = request.noise.static_loss_db()
    if nominal_snr is not None:
        nominal_bits = nominal_snr.effective_bits
    elif link is not None:
        nominal_bits = link.effective_bits(static_loss_db)
    else:
        nominal_bits = math.inf
    if request.reference == "float":
        reference = np.asarray(request.model.forward(request.inputs), dtype=float)
    else:
        reference = reference_forward(
            request.model,
            request.inputs,
            input_bits=input_bits,
            weight_bits=weight_bits,
            output_bits=output_bits,
            effective_bits=nominal_bits,
        )
    mode = active_rng_mode()
    # Every mode is resolved HERE, at dispatch time, and carried in the task
    # context: workers pin them around each trial, so neither later env flips
    # in this process nor a remote worker's own environment can change what a
    # dispatched study computes.
    fwd_mode = forward_mode()
    dt_mode = dtype_mode()
    shared = _TrialContext(
        model=request.model,
        inputs=request.inputs,
        reference=reference,
        spec=request.noise,
        input_bits=input_bits,
        weight_bits=weight_bits,
        output_bits=output_bits,
        seed=request.seed,
        link=link,
        rng_mode=mode,
        forward_mode=fwd_mode,
        dtype_mode=dt_mode,
    )
    backend = resolve_backend(request.backend, request.jobs)
    if backend.ships_tasks and shm_enabled():
        # Zero-copy transport: the model/inputs/reference travel as
        # content-addressed handles; workers resolve (and cache) them once
        # per host instead of unpickling per-chunk copies.
        shared = _shm_context(shared)
    if fwd_mode == "loop":
        # Legacy reference path: one task per trial, full model clone each.
        with backend.session():
            results = _observed_dispatch(
                lambda: backend.map_tasks(
                    _run_trial, list(range(request.trials)), shared=shared
                )
            )
    else:
        # Trial-batched path: shard the trial axis into contiguous chunks,
        # capped at _TRIAL_CHUNK_CAP trials so the stacked per-layer
        # temporaries stay cache-resident.  In-process backends keep the
        # near-equal static partition; task-shipping pools get size-tiered
        # chunks that their completion-driven schedulers pull as workers free
        # up, so a straggler strands at most one small tail chunk.  Either
        # way the partition is a pure function of (trials, jobs), and
        # per-trial seeds (or, in philox mode, per-trial slab rows) make
        # results chunking-invariant anyway.
        if backend.ships_tasks:
            chunks = steal_partition(
                request.trials, backend.jobs, cap=_TRIAL_CHUNK_CAP
            )
        else:
            parts = max(backend.jobs, math.ceil(request.trials / _TRIAL_CHUNK_CAP))
            chunks = partition_indices(request.trials, parts)
        if mode == "philox" and request.noise.supports_fused_sampling():
            # Counter-based fast path: generate the whole study's draws as one
            # (trials, loss + weight draws) Philox call in the parent, then
            # ship each chunk its contiguous row slice.  Trial i's draws are
            # row i regardless of chunking or backend.
            loss_columns = request.noise.loss_draw_count()
            weight_columns = sum(
                request.noise.weight_draw_count(size)
                for size in _weighted_layer_sizes(request.model)
            )
            draws = loss_columns + weight_columns
            dtype = compute_dtype()
            if backend.ships_tasks:
                # Each task carries a ~100-byte generation spec; the worker
                # re-derives its rows from the memoized pure slab function
                # instead of receiving pickled (or even shm-published) bytes.
                tasks = [
                    (
                        chunk,
                        _SlabRows(
                            int(request.seed), request.trials, draws,
                            dtype.str, chunk[0], chunk[-1] + 1,
                        ),
                    )
                    for chunk in chunks
                ]
            else:
                with stage("rng"):
                    slab = philox_fused_normals(
                        request.seed, request.trials, draws, dtype=dtype.type
                    )
                tasks = [
                    (chunk, slab[chunk[0] : chunk[-1] + 1]) for chunk in chunks
                ]
            with backend.session():
                nested = _observed_dispatch(
                    lambda: backend.map_tasks(_run_philox_chunk, tasks, shared=shared)
                )
        else:
            with backend.session():
                nested = _observed_dispatch(
                    lambda: backend.map_tasks(_run_trial_chunk, chunks, shared=shared)
                )
        results = [result for chunk_results in nested for result in chunk_results]
    return aggregate_trials(
        tuple(results),
        seed=request.seed,
        effective_bits_nominal=float(nominal_bits),
    )


def evaluate_accuracy(
    arch,
    request: AccuracyRequest,
    config=None,
    cache=None,
) -> AccuracyReport:
    """Monte Carlo accuracy of ``request`` on ``arch``, through the engine passes.

    Convenience wrapper constructing a fresh
    :class:`~repro.core.engine.EvaluationEngine` (sharing ``cache`` when given)
    and running its accuracy pipeline, so the link budget, receiver precision
    and the whole study are memoized like any other engine pass.
    """
    from repro.core.engine import EvaluationEngine

    engine = EvaluationEngine(arch, config, cache=cache)
    return engine.run_accuracy(request)
