"""Strategy-driven design-space exploration on the memoized evaluation engine.

Explores the TeMPO design space three ways -- exhaustive grid, random sampling
and coordinate descent -- sharing one evaluation cache, then reports what each
strategy found and how much of the work the engine's staged memoization reused.

Run with:  PYTHONPATH=src python examples/strategy_exploration.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import GEMMWorkload
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.explore import (
    CoordinateDescent,
    DesignSpace,
    DesignSpaceExplorer,
    GridSearch,
    RandomSearch,
)
from repro.utils.format import format_table


def main() -> None:
    rng = np.random.default_rng(0)
    workload = GEMMWorkload(
        "gemm_280x28_28x280",
        m=280,
        k=28,
        n=280,
        weight_values=rng.normal(0.0, 0.25, size=(28, 280)),
        input_values=rng.normal(0.0, 0.5, size=(280, 28)),
    )
    explorer = DesignSpaceExplorer(
        build_tempo,
        [workload],
        base_config=ArchitectureConfig(num_tiles=2, cores_per_tile=2),
        max_workers=4,  # parallel point evaluation, deterministic ordering
    )
    space = DesignSpace(
        {
            "core_height": [2, 4, 8],
            "core_width": [2, 4, 8],
            "num_wavelengths": [1, 2, 4],
        }
    )

    strategies = [
        GridSearch(),
        RandomSearch(num_samples=10, seed=7),
        CoordinateDescent(objective="energy_uj"),
    ]
    rows = []
    for strategy in strategies:
        start = time.perf_counter()
        result = explorer.explore(space, strategy=strategy)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        best = result.best("energy_uj")
        rows.append(
            (
                result.strategy,
                result.evaluations,
                len(result),
                f"{best.energy_uj:.3f}",
                ", ".join(f"{k}={v}" for k, v in sorted(best.parameters.items())),
                f"{elapsed_ms:.1f}",
            )
        )
    print(f"design space: {space.size()} points; strategies share one engine cache\n")
    print(
        format_table(
            ["strategy", "evaluations", "distinct points", "best energy (uJ)",
             "best point", "time (ms)"],
            rows,
        )
    )
    print("\nengine cache usage (hits/lookups per memoized pass):")
    for stage, stats in sorted(explorer.cache.stats.items()):
        print(f"  {stage:16s} {stats.hits:4d}/{stats.lookups:4d}")


if __name__ == "__main__":
    main()
