"""Quickstart: simulate a GEMM on the TeMPO photonic tensor core.

Builds the paper's TeMPO validation architecture (4x4 cores, 2 tiles x 2 cores per
tile, 5 GHz, 8-bit converters), runs the (280x28) x (28x280) GEMM through the full
SimPhony-Sim flow, and prints the latency / energy / area / link-budget summary.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GEMMWorkload, SimulationConfig, Simulator
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo


def main() -> None:
    # 1. Build the architecture.  Every parameter of the paper's notation is a
    #    constructor argument: R tiles, C cores/tile, H x W nodes/core, wavelengths.
    config = ArchitectureConfig(
        num_tiles=2,
        cores_per_tile=2,
        core_height=4,
        core_width=4,
        num_wavelengths=1,
        frequency_ghz=5.0,
        input_bits=8,
        weight_bits=8,
        output_bits=8,
        name="tempo",
    )
    arch = build_tempo(config=config)
    print(f"architecture        : {arch}")
    print(f"dot-product nodes   : {arch.config.num_nodes}")
    print(f"peak throughput     : {arch.peak_ops_per_second() / 1e12:.2f} TMAC/s")
    print(f"critical-path loss  : {arch.critical_path_loss_db():.2f} dB")
    print()

    # 2. Describe the workload.  Attaching real operand values enables the
    #    data-aware energy analysis (here random values stand in for a trained layer).
    rng = np.random.default_rng(0)
    workload = GEMMWorkload(
        name="gemm_280x28_28x280",
        m=280,
        k=28,
        n=280,
        weight_values=rng.normal(0.0, 0.25, size=(28, 280)),
        input_values=rng.normal(0.0, 0.5, size=(280, 28)),
    )

    # 3. Simulate.
    sim = Simulator(arch, SimulationConfig(data_aware=True, use_layout_aware_area=True))
    result = sim.run(workload)

    # 4. Inspect the result.
    print(result.summary())
    print()
    link = result.link_budgets["tempo"]
    print(
        f"link budget         : IL={link.insertion_loss_db:.2f} dB -> "
        f"laser {link.laser_optical_power_mw:.2f} mW optical / "
        f"{link.total_laser_electrical_power_mw:.2f} mW electrical"
    )
    memory = result.memory
    print(
        f"memory hierarchy    : GLB {memory.hierarchy.glb.capacity_bytes // 1024} KiB "
        f"x {memory.glb_blocks} block(s), demand {memory.demand_bytes_per_ns:.1f} B/ns, "
        f"bandwidth {memory.glb_bandwidth_bytes_per_ns:.1f} B/ns"
    )


if __name__ == "__main__":
    main()
