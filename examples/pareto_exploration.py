"""Automated design-space exploration with Pareto-front extraction.

Uses the :mod:`repro.explore` extension to sweep the TeMPO architecture over core
size and wavelength count for the paper's (280x28) x (28x280) GEMM, then prints all
evaluated design points and marks the Pareto-optimal ones over the
energy / latency / area objectives.

Run with:  python examples/pareto_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import GEMMWorkload
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.explore import DesignSpace, DesignSpaceExplorer
from repro.utils.format import format_table


def main() -> None:
    rng = np.random.default_rng(0)
    workload = GEMMWorkload(
        "gemm_280x28_28x280",
        m=280,
        k=28,
        n=280,
        weight_values=rng.normal(0.0, 0.25, size=(28, 280)),
        input_values=rng.normal(0.0, 0.5, size=(280, 28)),
    )

    explorer = DesignSpaceExplorer(
        build_tempo,
        [workload],
        base_config=ArchitectureConfig(num_tiles=2, cores_per_tile=2, frequency_ghz=5.0),
    )
    space = DesignSpace(
        {
            "core_height": [2, 4, 8],
            "core_width": [2, 4, 8],
            "num_wavelengths": [1, 2, 4],
        }
    )
    print(f"exploring {space.size()} design points ...")
    result = explorer.explore(space)
    front = result.pareto_front(("energy_uj", "latency_ns", "area_mm2"))

    rows = []
    for point in sorted(result.points, key=lambda p: p.energy_uj):
        rows.append(
            (
                ", ".join(f"{k}={v}" for k, v in sorted(point.parameters.items())),
                f"{point.energy_uj:.3f}",
                f"{point.latency_ns:.0f}",
                f"{point.area_mm2:.3f}",
                f"{point.laser_power_mw:.1f}",
                "*" if point in front else "",
            )
        )
    print(
        format_table(
            ["design point", "energy (uJ)", "latency (ns)", "area (mm2)", "laser (mW)", "pareto"],
            rows,
        )
    )
    print()
    print(f"{len(front)} of {len(result)} design points are Pareto-optimal")
    print(f"lowest-energy point : {result.best('energy_uj').parameters}")
    print(f"lowest-latency point: {result.best('latency_ns').parameters}")
    print(f"smallest-area point : {result.best('area_mm2').parameters}")


if __name__ == "__main__":
    main()
