"""Design-space exploration: sweep PTC architectural parameters on TeMPO.

Reproduces the style of the paper's Section IV-B use cases: sweep the number of
wavelengths (Fig. 9a) and the converter bitwidth (Fig. 9b) on the
(280x28) x (28x280) GEMM, and additionally sweep the core size -- an example of the
kind of exploration the framework is built for.  Prints one table per sweep with
energy, latency and the dominant energy component, so the efficiency sweet spots are
visible at a glance.

Run with:  python examples/design_space_sweep.py
"""

from __future__ import annotations

from repro import Simulator
from repro.arch import ArchitectureConfig
from repro.arch.templates import build_tempo
from repro.scenarios.workloads import paper_gemm
from repro.utils.format import format_table


def dominant(breakdown: dict) -> str:
    return max(breakdown, key=breakdown.get)


def sweep_wavelengths() -> None:
    rows = []
    for wavelengths in (1, 2, 3, 4, 5, 6, 7):
        arch = build_tempo(
            config=ArchitectureConfig(num_wavelengths=wavelengths),
            name=f"tempo_w{wavelengths}",
        )
        result = Simulator(arch).run(paper_gemm())
        rows.append(
            (
                wavelengths,
                f"{result.total_energy_uj:.3f}",
                f"{result.total_time_ns:.0f}",
                f"{result.energy_per_mac_pj:.3f}",
                dominant(result.energy_breakdown_pj),
            )
        )
    print("== wavelength sweep (Fig. 9a style) ==")
    print(format_table(
        ["# wavelengths", "energy (uJ)", "latency (ns)", "pJ/MAC", "dominant"], rows
    ))
    print()


def sweep_bitwidths() -> None:
    rows = []
    for bits in (2, 3, 4, 5, 6, 7, 8):
        arch = build_tempo(
            config=ArchitectureConfig(input_bits=bits, weight_bits=bits, output_bits=bits),
            name=f"tempo_b{bits}",
        )
        result = Simulator(arch).run(paper_gemm(bits=bits))
        rows.append(
            (
                bits,
                f"{result.total_energy_uj:.3f}",
                f"{result.energy_per_mac_pj:.3f}",
                dominant(result.energy_breakdown_pj),
            )
        )
    print("== bitwidth sweep (Fig. 9b style) ==")
    print(format_table(["bitwidth", "energy (uJ)", "pJ/MAC", "dominant"], rows))
    print()


def sweep_core_size() -> None:
    rows = []
    for size in (2, 4, 8, 12, 16):
        arch = build_tempo(
            config=ArchitectureConfig(core_height=size, core_width=size),
            name=f"tempo_{size}x{size}",
        )
        result = Simulator(arch).run(paper_gemm())
        area = result.area_reports[arch.name].photonic_core_area_mm2
        rows.append(
            (
                f"{size}x{size}",
                f"{result.total_energy_uj:.3f}",
                f"{result.total_time_ns:.0f}",
                f"{area:.3f}",
                f"{arch.critical_path_loss_db():.2f}",
                f"{result.link_budgets[arch.name].laser_optical_power_mw:.2f}",
            )
        )
    print("== core-size sweep (area / loss / laser trade-off) ==")
    print(format_table(
        ["core", "energy (uJ)", "latency (ns)", "core area (mm2)", "IL (dB)", "laser (mW)"],
        rows,
    ))


def main() -> None:
    sweep_wavelengths()
    sweep_bitwidths()
    sweep_core_size()


if __name__ == "__main__":
    main()
