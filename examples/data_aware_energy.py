"""Data-aware energy modeling on a weight-static PTC (SCATTER).

Reproduces the paper's Fig. 5 / Fig. 10(b) methodology: the same layer is evaluated
under three power-model fidelity levels --

1. data-independent: every phase shifter burns its nominal P_pi power;
2. data-aware with an analytical device model: power follows the phase each actual
   weight value requires;
3. data-aware with a "measured" (tabulated) device curve interpolated at runtime;

-- and with/without magnitude pruning, which lets pruned weight cells be power-gated
entirely.  The example prints the PS energy under each mode so the savings from data
awareness (and the extra fidelity of measured curves) are directly visible.

Run with:  python examples/data_aware_energy.py
"""

from __future__ import annotations

import numpy as np

from repro import GEMMWorkload, SimulationConfig, Simulator
from repro.arch.templates import build_scatter
from repro.devices.response import QuadraticPhaseShifterResponse, TabulatedResponse
from repro.onn.prune import magnitude_prune_mask
from repro.utils.format import format_table


def measured_curve(p_pi_mw: float) -> TabulatedResponse:
    """Stand-in for a Lumerical-HEAT / chip-measured heater power curve."""
    settings = np.linspace(-1.0, 1.0, 33)
    analytical = QuadraticPhaseShifterResponse(p_pi_mw)
    powers = np.array([analytical.power_mw(s) for s in settings]) * 0.97
    return TabulatedResponse(settings, powers)


def make_workload(prune_ratio: float = 0.0) -> GEMMWorkload:
    rng = np.random.default_rng(7)
    weights = rng.normal(0.0, 0.25, size=(16, 16))
    mask = magnitude_prune_mask(weights, prune_ratio) if prune_ratio > 0 else None
    return GEMMWorkload(
        "scatter_layer",
        m=1024,
        k=16,
        n=16,
        weight_values=weights,
        pruning_mask=mask,
        input_values=rng.normal(0.0, 0.5, size=(1024, 16)),
    )


def run(mode: str, data_aware: bool, use_measured_curve: bool, prune_ratio: float):
    arch = build_scatter()
    if use_measured_curve:
        p_pi = arch.library["phase_shifter"].nominal_power_mw()
        arch.library.register(
            arch.library["phase_shifter"].with_response(measured_curve(p_pi))
        )
    sim = Simulator(arch, SimulationConfig(data_aware=data_aware))
    result = sim.run(make_workload(prune_ratio))
    ps_uj = result.energy_breakdown_pj.get("PS", 0.0) / 1e6
    return (mode, f"{ps_uj:.3f}", f"{result.total_energy_uj:.3f}",
            f"{prune_ratio:.0%}")


def main() -> None:
    rows = [
        run("data-independent (nominal P_pi)", False, False, 0.0),
        run("data-aware, analytical model", True, False, 0.0),
        run("data-aware, measured curve", True, True, 0.0),
        run("data-aware, measured curve + 50% pruning", True, True, 0.5),
    ]
    print(format_table(["power model", "PS energy (uJ)", "total (uJ)", "pruning"], rows))
    print()
    print("Data awareness roughly halves the phase-shifter energy for typical weight")
    print("distributions; pruning power-gates the remaining cells for further savings.")


if __name__ == "__main__":
    main()
