"""Heterogeneous mapping: VGG-8 on CIFAR-10 with two photonic sub-architectures.

Reproduces the paper's Fig. 11 use case end to end:

1. build the VGG-8 model (numpy TorchONN-lite substrate);
2. convert it to its ONN version -- 8-bit quantization, 30 % magnitude pruning, and
   a per-layer-type PTC assignment (convolutions -> SCATTER, linear -> MZI mesh);
3. extract per-layer GEMM workloads from a real forward pass on a CIFAR-10-sized
   image, so the weight values and pruning masks flow into the energy model;
4. simulate on a heterogeneous system whose two sub-architectures share one memory
   hierarchy, and print the per-layer energy table.

Run with:  python examples/heterogeneous_vgg8.py  [width_multiplier]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Simulator
from repro.arch.architecture import HeterogeneousArchitecture
from repro.arch.templates import build_mzi_mesh, build_scatter
from repro.onn import ONNConversionConfig, convert_to_onn, extract_workloads
from repro.onn.models import build_vgg8_cifar10
from repro.utils.format import format_table


def main(width_multiplier: float = 0.25) -> None:
    print(f"building VGG-8 (width multiplier {width_multiplier}) ...")
    model = build_vgg8_cifar10(width_multiplier=width_multiplier, input_size=32)
    convert_to_onn(
        model,
        ONNConversionConfig(
            input_bits=8,
            weight_bits=8,
            output_bits=8,
            prune_ratio=0.3,
            ptc_assignment={"conv": "scatter", "linear": "mzi_mesh"},
        ),
    )

    image = np.random.default_rng(0).normal(size=(3, 32, 32))
    workloads = extract_workloads(model, image)
    print(f"extracted {len(workloads)} GEMM workloads, "
          f"{sum(w.num_macs for w in workloads) / 1e6:.1f} MMACs total\n")

    system = HeterogeneousArchitecture(name="vgg8_hybrid")
    system.add("scatter", build_scatter())
    system.add("mzi_mesh", build_mzi_mesh())

    sim = Simulator(system, type_rules={"conv": "scatter", "linear": "mzi_mesh"})
    result = sim.run(workloads)

    rows = []
    for layer in result.layers:
        rows.append(
            (
                layer.name,
                layer.arch_name,
                layer.workload.num_macs,
                f"{layer.latency.total_cycles}",
                f"{layer.total_energy_pj / 1e6:.4f}",
                f"{layer.workload.sparsity:.2f}",
            )
        )
    print(format_table(
        ["layer", "sub-architecture", "MACs", "cycles", "energy (uJ)", "sparsity"], rows
    ))
    print()
    print(f"total energy : {result.total_energy_uj:.3f} uJ")
    print(f"total latency: {result.total_time_ns / 1e3:.1f} us")
    print(f"energy by sub-architecture: "
          f"{ {k: round(v / 1e6, 3) for k, v in result.energy_by_arch().items()} } uJ")


if __name__ == "__main__":
    width = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    main(width)
