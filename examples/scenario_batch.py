"""Scenario registry + batch runner: reproduce figure experiments programmatically.

The same machinery behind ``python -m repro batch``: pick scenarios from the
registry, run them through one shared evaluation cache with a persistent result
store, and show that the second batch is served entirely from disk -- zero
engine passes.

Run with:  python examples/scenario_batch.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.scenarios import REGISTRY, BatchRunner, ResultStore


def main(names=None) -> None:
    names = list(names) if names is not None else REGISTRY.names(tag="smoke")
    print("registered scenarios:")
    for scenario in REGISTRY:
        marker = "*" if scenario.name in names else " "
        print(f"  {marker} {scenario.name:24s} {scenario.spec.figure or '-':10s} "
              f"{scenario.spec.title}")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "store")

        print(f"-- first batch (cold store) over {len(names)} scenarios --")
        first = BatchRunner(store=store).run(names)
        print(first.summary_table())
        print()

        print("-- second batch (warm store: every scenario is a disk hit) --")
        second = BatchRunner(store=store).run(names)
        print(second.summary_table())
        print()

        result = second.item(names[0]).result
        print(f"-- stored table for {result.name} "
              f"(fingerprint {result.fingerprint[:16]}) --")
        print(result.table)


if __name__ == "__main__":
    main()
